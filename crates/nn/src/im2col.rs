//! im2col/col2im lowering: turns convolution into matrix
//! multiplication.
//!
//! # Layout
//!
//! For one sample and one channel group, [`im2col`] writes the column
//! matrix `Col` with one **row per (channel, ky, kx) weight position**
//! and one **column per output pixel**:
//!
//! ```text
//! row (icg·k + ky)·k + kx, column oy·ow + ox
//!     = x[ch_base + icg][oy·s + ky − p][ox·s + kx − p]   (0 if padded)
//!
//!            ┌───────────── oh·ow ─────────────┐
//!            │ x(c0, shifted by ky=0,kx=0) ... │
//!  icg·k·k   │ x(c0, shifted by ky=0,kx=1) ... │
//!   rows     │           ...                   │
//!            │ x(c_last, ky=k−1, kx=k−1)   ... │
//!            └─────────────────────────────────┘
//! ```
//!
//! The convolution then becomes `Out = W · Col` where `W` is the
//! layer's weight matrix (`out_channels × icg·k·k`, already stored
//! row-major in exactly that order), computed by [`crate::gemm`].
//! [`col2im_add`] is the adjoint scatter used by the backward pass.
//!
//! Rows are filled segment-wise: for each row the valid `ox` interval
//! is computed once from the padding arithmetic, the out-of-image
//! margins are zero-filled, and the in-image span is a `memcpy` for
//! stride 1 (the common case) or a short strided loop otherwise — no
//! per-element bounds branching.
//!
//! [`im2col_packed`] writes the same matrix **directly in the GEMM
//! kernel's packed-B panel layout** (NR-wide column strips per K-slice,
//! see [`crate::gemm::PackedB`]), so the convolution hot path skips the
//! kernel's separate pack pass entirely: lowering and packing become
//! one write over the data. [`im2col_packed_i8`] does the same for the
//! quantised int8 kernel's pair-interleaved panels (see
//! [`crate::gemm::int8`]), lowering a pre-quantised sample with pure
//! integer copies.

/// Geometry of one conv lowering (per sample, per group).
#[derive(Debug, Clone, Copy)]
pub struct ConvGeom {
    /// Channels read by this group.
    pub channels: usize,
    /// First input channel of the group within the sample.
    pub ch_base: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Square kernel size.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub padding: usize,
    /// Output height.
    pub oh: usize,
    /// Output width.
    pub ow: usize,
}

impl ConvGeom {
    /// Rows of the column matrix (`channels · k²`).
    pub fn rows(&self) -> usize {
        self.channels * self.k * self.k
    }

    /// Columns of the column matrix (`oh · ow`).
    pub fn cols(&self) -> usize {
        self.oh * self.ow
    }

    /// Required `col` buffer length.
    pub fn col_len(&self) -> usize {
        self.rows() * self.cols()
    }

    /// The valid `ox` range `[lo, hi)` for kernel column `kx`, i.e.
    /// where `0 ≤ ox·s + kx − p < w`.
    #[inline]
    fn ox_range(&self, kx: usize) -> (usize, usize) {
        let (s, p, w) = (self.stride, self.padding as isize, self.w as isize);
        let kx = kx as isize;
        // ox ≥ (p − kx) / s, rounded up.
        let lo = ((p - kx).max(0) as usize).div_ceil(s);
        // ox ≤ (w − 1 − kx + p) / s, rounded down — floor division, not
        // Rust's toward-zero `/`: the numerator is negative when the
        // kernel overhangs the whole row (kernel > w + padding).
        let hi_excl = ((w - 1 - kx + p).div_euclid(s as isize) + 1).max(0) as usize;
        (lo.min(self.ow), hi_excl.min(self.ow))
    }

    /// The input row index for output row `oy` and kernel row `ky`, or
    /// `None` when it falls in the padding.
    #[inline]
    fn iy(&self, oy: usize, ky: usize) -> Option<usize> {
        let iy = (oy * self.stride + ky) as isize - self.padding as isize;
        (iy >= 0 && iy < self.h as isize).then_some(iy as usize)
    }
}

/// Fills `col` (length [`ConvGeom::col_len`]) from one sample's input
/// plane `x` (`≥ (ch_base + channels)·h·w` elements).
pub fn im2col(x: &[f32], g: &ConvGeom, col: &mut [f32]) {
    let (k, s, ow) = (g.k, g.stride, g.ow);
    let plane = g.h * g.w;
    let cols = g.cols();
    for icg in 0..g.channels {
        let xc = &x[(g.ch_base + icg) * plane..][..plane];
        for ky in 0..k {
            for kx in 0..k {
                let row = ((icg * k + ky) * k + kx) * cols;
                let dst = &mut col[row..][..cols];
                let (lo, hi) = g.ox_range(kx);
                for oy in 0..g.oh {
                    let seg = &mut dst[oy * ow..][..ow];
                    match g.iy(oy, ky) {
                        None => seg.fill(0.0),
                        Some(iy) => {
                            seg[..lo].fill(0.0);
                            seg[hi..].fill(0.0);
                            if lo < hi {
                                let ix0 = lo * s + kx - g.padding;
                                let src = &xc[iy * g.w..][..g.w];
                                if s == 1 {
                                    seg[lo..hi].copy_from_slice(&src[ix0..ix0 + (hi - lo)]);
                                } else {
                                    for (i, v) in seg[lo..hi].iter_mut().enumerate() {
                                        *v = src[ix0 + i * s];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The destination of one packed row: resolves column index `j` of
/// logical row `p` to positions inside the packed-B buffer. Columns of
/// a row sit NR apart in memory strips; walking `j` therefore jumps by
/// `strip_stride` every NR columns.
#[derive(Clone, Copy)]
struct PackedRow {
    /// Offset of column 0 of this row (strip 0).
    base: usize,
    /// Elements between consecutive strips of this row's K-slice.
    strip_stride: usize,
}

impl PackedRow {
    fn new(p: usize, k_rows: usize, n_pad: usize) -> Self {
        use crate::gemm::{KC, NR};
        let slice = p / KC;
        let kc = KC.min(k_rows - slice * KC);
        Self {
            base: n_pad * slice * KC + (p % KC) * NR,
            strip_stride: kc * NR,
        }
    }

    /// Zero-fills columns `[j0, j1)`.
    fn fill_zero(&self, pb: &mut [f32], mut j0: usize, j1: usize) {
        use crate::gemm::NR;
        while j0 < j1 {
            let off = j0 % NR;
            let take = (NR - off).min(j1 - j0);
            let at = self.base + (j0 / NR) * self.strip_stride + off;
            pb[at..at + take].fill(0.0);
            j0 += take;
        }
    }

    /// Writes `src[0], src[stride], …` into columns `[j0, j0 + len)`.
    fn copy_strided(&self, pb: &mut [f32], mut j0: usize, len: usize, src: &[f32], stride: usize) {
        use crate::gemm::NR;
        let j1 = j0 + len;
        let mut i = 0;
        while j0 < j1 {
            let off = j0 % NR;
            let take = (NR - off).min(j1 - j0);
            let at = self.base + (j0 / NR) * self.strip_stride + off;
            if stride == 1 {
                pb[at..at + take].copy_from_slice(&src[i..i + take]);
            } else {
                for (t, d) in pb[at..at + take].iter_mut().enumerate() {
                    *d = src[(i + t) * stride];
                }
            }
            i += take;
            j0 += take;
        }
    }
}

/// [`im2col`], but writing straight into the GEMM kernel's packed-B
/// panel layout: `pb` must hold at least
/// [`crate::gemm::packed_b_len`]`(g.rows(), g.cols())` elements and is
/// fully overwritten (including the zero padding), so it can be reused
/// across samples without clearing. Wrap the result in
/// [`crate::gemm::PackedBRef::new`] and multiply with
/// [`crate::gemm::gemm_with`].
pub fn im2col_packed(x: &[f32], g: &ConvGeom, pb: &mut [f32]) {
    use crate::gemm::{packed_b_len, NR};
    let (k, s, ow) = (g.k, g.stride, g.ow);
    let plane = g.h * g.w;
    let n = g.cols();
    let k_rows = g.rows();
    let n_pad = n.div_ceil(NR) * NR;
    debug_assert!(pb.len() >= packed_b_len(k_rows, n));
    for icg in 0..g.channels {
        let xc = &x[(g.ch_base + icg) * plane..][..plane];
        for ky in 0..k {
            for kx in 0..k {
                let p = (icg * k + ky) * k + kx;
                let row = PackedRow::new(p, k_rows, n_pad);
                let (lo, hi) = g.ox_range(kx);
                for oy in 0..g.oh {
                    let j0 = oy * ow;
                    match g.iy(oy, ky) {
                        None => row.fill_zero(pb, j0, j0 + ow),
                        Some(iy) => {
                            row.fill_zero(pb, j0, j0 + lo);
                            row.fill_zero(pb, j0 + hi, j0 + ow);
                            if lo < hi {
                                let ix0 = lo * s + kx - g.padding;
                                let src = &xc[iy * g.w + ix0..];
                                row.copy_strided(pb, j0 + lo, hi - lo, src, s);
                            }
                        }
                    }
                }
                // Padding columns n..n_pad must be zero, matching what
                // the kernel's own pack step would have produced.
                row.fill_zero(pb, n, n_pad);
            }
        }
    }
}

/// [`im2col`] over a pre-quantised `i16` sample: identical semantics
/// (zero margins, `memcpy` spans), writing the plain `rows × cols`
/// row-major column matrix. `staging` must hold `w + 2·padding`
/// elements; its contents are ignored on entry.
///
/// Stride 1 (every convolution in this crate) takes a staging-row fast
/// path: the input row is copied once into the zero-padded staging
/// buffer, after which the segment for kernel column `kx` is the plain
/// window `staging[kx..kx + ow]` — no per-segment range arithmetic, no
/// boundary fills, one unconditional `memcpy` per `(ky, kx, oy)`.
fn im2col_i16(qx: &[i16], g: &ConvGeom, col: &mut [i16], staging: &mut [i16]) {
    let (k, s, ow) = (g.k, g.stride, g.ow);
    let plane = g.h * g.w;
    let cols = g.cols();
    if s == 1 && ow + k <= g.w + 2 * g.padding + 1 {
        // ow + k − 1 == w + 2p exactly (stride-1 output arithmetic);
        // the guard documents the staging window invariant.
        let p = g.padding;
        // The padding margins of the staging row are the zeros every
        // window copy reads; one tiny fill per call keeps them correct
        // whatever a previous (differently-sized) call left behind.
        staging.fill(0);
        for icg in 0..g.channels {
            let xc = &qx[(g.ch_base + icg) * plane..][..plane];
            let band = icg * k * k;
            for ky in 0..k {
                for oy in 0..g.oh {
                    match g.iy(oy, ky) {
                        None => {
                            for kx in 0..k {
                                col[((band + ky * k) + kx) * cols + oy * ow..][..ow].fill(0);
                            }
                        }
                        Some(iy) => {
                            staging[p..p + g.w].copy_from_slice(&xc[iy * g.w..][..g.w]);
                            for kx in 0..k {
                                col[((band + ky * k) + kx) * cols + oy * ow..][..ow]
                                    .copy_from_slice(&staging[kx..kx + ow]);
                            }
                        }
                    }
                }
            }
        }
        return;
    }
    for icg in 0..g.channels {
        let xc = &qx[(g.ch_base + icg) * plane..][..plane];
        for ky in 0..k {
            for kx in 0..k {
                let row = ((icg * k + ky) * k + kx) * cols;
                let dst = &mut col[row..][..cols];
                let (lo, hi) = g.ox_range(kx);
                for oy in 0..g.oh {
                    let seg = &mut dst[oy * ow..][..ow];
                    match g.iy(oy, ky) {
                        None => seg.fill(0),
                        Some(iy) => {
                            seg[..lo].fill(0);
                            seg[hi..].fill(0);
                            if lo < hi {
                                let ix0 = lo * s + kx - g.padding;
                                let src = &xc[iy * g.w..][..g.w];
                                for (i, v) in seg[lo..hi].iter_mut().enumerate() {
                                    *v = src[ix0 + i * s];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Packs a plain `k_rows × n` row-major `i16` column matrix into the
/// int8 kernel's pair-interleaved packed-B panel layout (layout of
/// [`crate::gemm::PackedB8`]): for each NR-wide strip and k-pair, the
/// two rows' segments interleave element-wise — a fixed-width loop the
/// compiler lowers to `punpcklwd`/`punpckhwd`-class shuffles, instead
/// of the one-lane-at-a-time scatter a direct pair-interleaved
/// lowering would need. Every element of the used region is written
/// (column padding, pair padding and the odd-tail k-step included).
fn pack_b8_rows(col: &[i16], k_rows: usize, n: usize, pb: &mut [i16]) {
    use crate::gemm::int8::KC8;
    use crate::gemm::NR;
    let n_pad = n.div_ceil(NR) * NR;
    let strips = n.div_ceil(NR);
    let mut pc = 0;
    while pc < k_rows {
        let kc = KC8.min(k_rows - pc);
        let kcp = kc + (kc & 1);
        let slice_base = n_pad * pc;
        for strip in 0..strips {
            let j0 = strip * NR;
            let width = NR.min(n - j0);
            let sbase = slice_base + strip * kcp * NR;
            for q in 0..kcp / 2 {
                let p0 = pc + 2 * q;
                let dst = &mut pb[sbase + q * 2 * NR..][..2 * NR];
                let a = &col[p0 * n + j0..][..width];
                if 2 * q + 1 < kc {
                    let b = &col[(p0 + 1) * n + j0..][..width];
                    if width == NR {
                        // Full-strip fast path: fixed trip count, pure
                        // interleave — vectorises.
                        for c in 0..NR {
                            dst[2 * c] = a[c];
                            dst[2 * c + 1] = b[c];
                        }
                    } else {
                        for c in 0..width {
                            dst[2 * c] = a[c];
                            dst[2 * c + 1] = b[c];
                        }
                        dst[2 * width..].fill(0);
                    }
                } else {
                    // Odd tail k-step: the pair partner is zero pad.
                    for c in 0..width {
                        dst[2 * c] = a[c];
                        dst[2 * c + 1] = 0;
                    }
                    dst[2 * width..].fill(0);
                }
            }
        }
        pc += kc;
    }
}

thread_local! {
    /// Reusable plain column matrix for the two-pass int8 lowering;
    /// grown once, then reused.
    static COL_I16: std::cell::RefCell<Vec<i16>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// [`im2col`], but lowering a **pre-quantised** sample (int8-grid
/// values in `i16` storage, see `quant::quantize_slice_i16`) into the
/// int8 GEMM kernel's pair-interleaved packed-B layout: quantise once
/// per sample, then lowering and packing are pure integer copies. `qx`
/// has the same `[channels][h][w]` plane layout as the `f32` sample;
/// `pb` must hold at least
/// [`crate::gemm::packed_b8_len`]`(g.rows(), g.cols())` elements and
/// its used region is fully overwritten (padding included), so it can
/// be reused across samples without clearing. Wrap the result in
/// [`crate::gemm::PackedB8Ref::new`] and multiply with
/// [`crate::gemm::gemm_i8`].
///
/// Runs in two passes over a reusable thread-local buffer — a plain
/// contiguous [`im2col`] (`memcpy` spans) followed by a vectorisable
/// pair-interleave pack ([`pack_b8_rows`]). Measured ~2× faster than
/// the previous single-pass form, whose lane-strided writes (every
/// other `i16`) compiled to one-element scatter stores and dominated
/// the whole batch-1 quantised forward at small widths.
pub fn im2col_packed_i8(qx: &[i16], g: &ConvGeom, pb: &mut [i16]) {
    use crate::gemm::packed_b8_len;
    debug_assert!(pb.len() >= packed_b8_len(g.rows(), g.cols()));
    let staging_len = g.w + 2 * g.padding;
    COL_I16.with(|cell| {
        let mut col = cell.take();
        let need = g.col_len() + staging_len;
        if col.len() < need {
            // Staging must be zeroed; the column region gets fully
            // overwritten, so only growth needs the explicit zeros.
            col.resize(need, 0);
        }
        let split = col.len() - staging_len;
        let (col_mat, staging) = col.split_at_mut(split);
        im2col_i16(qx, g, col_mat, staging);
        pack_b8_rows(col_mat, g.rows(), g.cols(), pb);
        cell.replace(col);
    });
}

/// The destination of one row of the column matrix in **packed-A**
/// layout (MR-tall row strips per K-slice, see
/// [`crate::gemm::PackedA`]): the backward pass multiplies
/// `im2col(x) · dOutᵀ`, where the column matrix is the *left* operand,
/// so its rows interleave MR-wise instead of its columns.
#[derive(Clone, Copy)]
struct PackedLhsRow {
    /// `i / MR` — which MR-tall strip holds this row.
    strip: usize,
    /// `i % MR` — lane within the strip.
    lane: usize,
    /// Rows of the logical matrix, padded to a multiple of MR.
    m_pad: usize,
    /// Total K extent (columns of the logical matrix).
    total_k: usize,
}

impl PackedLhsRow {
    fn new(i: usize, m: usize, total_k: usize) -> Self {
        use crate::gemm::MR;
        Self {
            strip: i / MR,
            lane: i % MR,
            m_pad: m.div_ceil(MR) * MR,
            total_k,
        }
    }

    /// Runs `write(addr, idx)` for every column `j0 + idx` in
    /// `[j0, j1)`, resolving the packed address slice by slice.
    #[inline]
    fn for_each(&self, mut j: usize, j1: usize, mut write: impl FnMut(usize, usize)) {
        use crate::gemm::{KC, MR};
        let j0 = j;
        while j < j1 {
            let slice = j / KC;
            let kc = KC.min(self.total_k - slice * KC);
            let slice_end = (slice * KC + kc).min(j1);
            let mut addr =
                self.m_pad * slice * KC + self.strip * kc * MR + (j % KC) * MR + self.lane;
            while j < slice_end {
                write(addr, j - j0);
                addr += MR;
                j += 1;
            }
        }
    }

    fn fill_zero(&self, pa: &mut [f32], j0: usize, j1: usize) {
        self.for_each(j0, j1, |addr, _| pa[addr] = 0.0);
    }

    fn copy_strided(&self, pa: &mut [f32], j0: usize, len: usize, src: &[f32], stride: usize) {
        self.for_each(j0, j0 + len, |addr, idx| pa[addr] = src[idx * stride]);
    }
}

/// [`im2col`], but writing straight into the GEMM kernel's packed-A
/// layout, for products where the column matrix is the *left* operand
/// (`gWᵀ = im2col(x) · dOutᵀ` in the convolution backward pass). `pa`
/// must hold at least [`crate::gemm::packed_a_len`]`(g.rows(),
/// g.cols())` elements and is fully overwritten, padding included.
/// Wrap the result in [`crate::gemm::PackedARef::new`].
pub fn im2col_packed_lhs(x: &[f32], g: &ConvGeom, pa: &mut [f32]) {
    use crate::gemm::{packed_a_len, MR};
    let (k, s, ow) = (g.k, g.stride, g.ow);
    let plane = g.h * g.w;
    let n = g.cols();
    let m = g.rows();
    debug_assert!(pa.len() >= packed_a_len(m, n));
    for icg in 0..g.channels {
        let xc = &x[(g.ch_base + icg) * plane..][..plane];
        for ky in 0..k {
            for kx in 0..k {
                let i = (icg * k + ky) * k + kx;
                let row = PackedLhsRow::new(i, m, n);
                let (lo, hi) = g.ox_range(kx);
                for oy in 0..g.oh {
                    let j0 = oy * ow;
                    match g.iy(oy, ky) {
                        None => row.fill_zero(pa, j0, j0 + ow),
                        Some(iy) => {
                            row.fill_zero(pa, j0, j0 + lo);
                            row.fill_zero(pa, j0 + hi, j0 + ow);
                            if lo < hi {
                                let ix0 = lo * s + kx - g.padding;
                                let src = &xc[iy * g.w + ix0..];
                                row.copy_strided(pa, j0 + lo, hi - lo, src, s);
                            }
                        }
                    }
                }
            }
        }
    }
    // Lane padding: rows m..m_pad of the last strip must be zero.
    let m_pad = m.div_ceil(MR) * MR;
    for i in m..m_pad {
        PackedLhsRow::new(i, m, n).fill_zero(pa, 0, n);
    }
}

/// Adjoint of [`im2col`]: scatter-adds `col` back into the gradient
/// plane `gx` (same layout as the input sample).
pub fn col2im_add(col: &[f32], g: &ConvGeom, gx: &mut [f32]) {
    let (k, s, ow) = (g.k, g.stride, g.ow);
    let plane = g.h * g.w;
    let cols = g.cols();
    for icg in 0..g.channels {
        let gc = &mut gx[(g.ch_base + icg) * plane..][..plane];
        for ky in 0..k {
            for kx in 0..k {
                let row = ((icg * k + ky) * k + kx) * cols;
                let src_row = &col[row..][..cols];
                let (lo, hi) = g.ox_range(kx);
                if lo >= hi {
                    continue;
                }
                for oy in 0..g.oh {
                    let Some(iy) = g.iy(oy, ky) else { continue };
                    let seg = &src_row[oy * ow..][..ow];
                    let ix0 = lo * s + kx - g.padding;
                    let dst = &mut gc[iy * g.w..][..g.w];
                    if s == 1 {
                        for (d, &v) in dst[ix0..ix0 + (hi - lo)].iter_mut().zip(&seg[lo..hi]) {
                            *d += v;
                        }
                    } else {
                        for (i, &v) in seg[lo..hi].iter().enumerate() {
                            dst[ix0 + i * s] += v;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_im2col(x: &[f32], g: &ConvGeom) -> Vec<f32> {
        let mut col = vec![0.0f32; g.col_len()];
        let cols = g.cols();
        for icg in 0..g.channels {
            for ky in 0..g.k {
                for kx in 0..g.k {
                    for oy in 0..g.oh {
                        for ox in 0..g.ow {
                            let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                            let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                            let v = if iy >= 0
                                && (iy as usize) < g.h
                                && ix >= 0
                                && (ix as usize) < g.w
                            {
                                x[(g.ch_base + icg) * g.h * g.w + iy as usize * g.w + ix as usize]
                            } else {
                                0.0
                            };
                            col[((icg * g.k + ky) * g.k + kx) * cols + oy * g.ow + ox] = v;
                        }
                    }
                }
            }
        }
        col
    }

    fn geom(h: usize, w: usize, k: usize, s: usize, p: usize, ch: usize, base: usize) -> ConvGeom {
        ConvGeom {
            channels: ch,
            ch_base: base,
            h,
            w,
            k,
            stride: s,
            padding: p,
            oh: (h + 2 * p - k) / s + 1,
            ow: (w + 2 * p - k) / s + 1,
        }
    }

    #[test]
    fn matches_naive_lowering() {
        for &(h, w, k, s, p) in &[
            (5, 5, 3, 1, 1),
            (5, 7, 3, 2, 1),
            (4, 4, 1, 1, 0),
            (6, 6, 3, 1, 0),
            (8, 5, 2, 2, 0),
            (3, 3, 3, 1, 2),
            // Kernel overhangs the whole input row (regression: the
            // valid-ox interval must be empty, not [0, 1)).
            (2, 2, 4, 2, 1),
            (3, 3, 5, 2, 1),
        ] {
            let g = geom(h, w, k, s, p, 2, 1);
            let x: Vec<f32> = (0..(g.ch_base + g.channels) * h * w)
                .map(|i| i as f32 * 0.25 - 3.0)
                .collect();
            let mut col = vec![f32::NAN; g.col_len()];
            im2col(&x, &g, &mut col);
            assert_eq!(col, naive_im2col(&x, &g), "geom h{h} w{w} k{k} s{s} p{p}");
        }
    }

    #[test]
    fn packed_lowering_matches_pack_of_plain_lowering() {
        use crate::gemm::{packed_b_len, MatRef, PackedB};
        // Geometries cover: unaligned column counts (ow not a multiple
        // of NR), strides, padding, kernels overhanging the row, and a
        // row count above KC (kernel 6 × 8 channels = 288 rows > 256),
        // which forces a second K-slice in the packed layout.
        for &(h, w, k, s, p, ch) in &[
            (5usize, 5usize, 3usize, 1usize, 1usize, 2usize),
            (5, 7, 3, 2, 1, 2),
            (4, 4, 1, 1, 0, 3),
            (8, 5, 2, 2, 0, 2),
            (2, 2, 4, 2, 1, 1),
            (9, 9, 6, 1, 2, 8),
        ] {
            let g = geom(h, w, k, s, p, ch, 1);
            let x: Vec<f32> = (0..(g.ch_base + g.channels) * h * w)
                .map(|i| (i as f32 * 0.37).sin())
                .collect();
            let mut col = vec![0.0f32; g.col_len()];
            im2col(&x, &g, &mut col);
            let expect = PackedB::pack(MatRef::new(&col, g.cols()), g.rows(), g.cols());
            // Poison the destination: the packed writer must overwrite
            // everything, padding included.
            let mut pb = vec![f32::NAN; packed_b_len(g.rows(), g.cols())];
            im2col_packed(&x, &g, &mut pb);
            let mut probe = vec![0.0f32; g.rows() * g.cols()];
            let mut probe2 = vec![0.0f32; g.rows() * g.cols()];
            // Compare through the GEMM (identity A would do, but a
            // random A exercises every panel): bit-equality required.
            let a: Vec<f32> = (0..3 * g.rows()).map(|i| (i as f32 * 0.11).cos()).collect();
            crate::gemm::gemm_with(
                3,
                g.cols(),
                g.rows(),
                crate::gemm::Lhs::Mat(MatRef::new(&a, g.rows())),
                crate::gemm::Rhs::Packed(expect.as_ref()),
                0.0,
                &mut probe,
                g.cols(),
                false,
                crate::gemm::Epilogue::none(),
            );
            crate::gemm::gemm_with(
                3,
                g.cols(),
                g.rows(),
                crate::gemm::Lhs::Mat(MatRef::new(&a, g.rows())),
                crate::gemm::Rhs::Packed(crate::gemm::PackedBRef::new(&pb, g.rows(), g.cols())),
                0.0,
                &mut probe2,
                g.cols(),
                false,
                crate::gemm::Epilogue::none(),
            );
            assert!(
                probe
                    .iter()
                    .zip(&probe2)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "geom h{h} w{w} k{k} s{s} p{p} ch{ch}: packed lowering differs"
            );
        }
    }

    #[test]
    fn packed_i8_lowering_matches_quantised_pack_of_plain_lowering() {
        use crate::gemm::int8::QEpilogue;
        use crate::gemm::{gemm_i8, packed_b8_len, MatRef, PackedA8, PackedB8, PackedB8Ref};
        use crate::quant::quantize_slice_i16;
        // Same geometry classes as the f32 packed test: unaligned
        // column counts, strides, padding, overhanging kernels, odd
        // row counts (pair padding) — plus one geometry whose row
        // count exceeds the int8 kernel's own (deeper) K-slice,
        // pinning the KC8-based pair-interleaved slice addressing.
        for &(h, w, k, s, p, ch) in &[
            (5usize, 5usize, 3usize, 1usize, 1usize, 2usize),
            (5, 7, 3, 2, 1, 2),
            (4, 4, 1, 1, 0, 3),
            (8, 5, 2, 2, 0, 2),
            (2, 2, 4, 2, 1, 1),
            (9, 9, 6, 1, 2, 8),
            // Pointwise conv, 2 channels on 4x4: an even row count
            // with cols an exact multiple of NR, so the odd row's last
            // span ends flush at the final strip boundary (regression:
            // the pair-lane slice used to overrun the buffer by one).
            (4, 4, 1, 1, 0, 2),
            // 3 channels x 3^2 kernel = 27 rows: odd, so the layout
            // carries a zero pad k-step.
            (6, 6, 3, 1, 1, 3),
            // 8 channels x 12^2 kernel = 1152 rows > KC8: forces a
            // second int8 K-slice in the packed layout.
            (12, 12, 12, 1, 2, 8),
        ] {
            let g = geom(h, w, k, s, p, ch, 1);
            let x: Vec<f32> = (0..(g.ch_base + g.channels) * h * w)
                .map(|i| (i as f32 * 0.37).sin())
                .collect();
            let inv = 127.0 / 0.95;
            let mut col = vec![0.0f32; g.col_len()];
            im2col(&x, &g, &mut col);
            let expect =
                PackedB8::pack_quantized(MatRef::new(&col, g.cols()), g.rows(), g.cols(), inv);
            // Quantise the sample once, then lower; poison the
            // destination: the writer must overwrite everything,
            // padding included.
            let mut qx = vec![0i16; x.len()];
            quantize_slice_i16(&x, inv, &mut qx);
            let mut pb = vec![i16::MIN; packed_b8_len(g.rows(), g.cols())];
            im2col_packed_i8(&qx, &g, &mut pb);
            // Compare through the int8 GEMM (a random quantised A
            // exercises every panel): bit-equality required.
            let a: Vec<f32> = (0..3 * g.rows()).map(|i| (i as f32 * 0.11).cos()).collect();
            let pa = PackedA8::pack_quantized(MatRef::new(&a, g.rows()), 3, g.rows(), 127.0);
            let mut probe = vec![0.0f32; 3 * g.cols()];
            let mut probe2 = vec![0.0f32; 3 * g.cols()];
            let ep = QEpilogue::scaled(1.0);
            gemm_i8(
                3,
                g.cols(),
                g.rows(),
                pa.as_ref(),
                expect.as_ref(),
                &mut probe,
                g.cols(),
                false,
                ep,
            );
            gemm_i8(
                3,
                g.cols(),
                g.rows(),
                pa.as_ref(),
                PackedB8Ref::new(&pb, g.rows(), g.cols()),
                &mut probe2,
                g.cols(),
                false,
                ep,
            );
            assert!(
                probe
                    .iter()
                    .zip(&probe2)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "geom h{h} w{w} k{k} s{s} p{p} ch{ch}: packed int8 lowering differs"
            );
        }
    }

    #[test]
    fn packed_lhs_lowering_matches_pack_of_plain_lowering() {
        use crate::gemm::{packed_a_len, Epilogue, Lhs, MatRef, PackedA, PackedARef, Rhs};
        // Same geometry sweep as the packed-B test; the kernel-6 case
        // again pushes the row count past one K-slice worth of columns
        // is impossible here (K = output positions), so a 17×17 input
        // with stride 1 drives cols() past KC instead.
        for &(h, w, k, s, p, ch) in &[
            (5usize, 5usize, 3usize, 1usize, 1usize, 2usize),
            (5, 7, 3, 2, 1, 2),
            (4, 4, 1, 1, 0, 3),
            (8, 5, 2, 2, 0, 2),
            (2, 2, 4, 2, 1, 1),
            (17, 17, 3, 1, 1, 2),
        ] {
            let g = geom(h, w, k, s, p, ch, 0);
            let x: Vec<f32> = (0..g.channels * h * w)
                .map(|i| (i as f32 * 0.29).sin())
                .collect();
            let mut col = vec![0.0f32; g.col_len()];
            im2col(&x, &g, &mut col);
            let expect = PackedA::pack(MatRef::new(&col, g.cols()), g.rows(), g.cols());
            let mut pa = vec![f32::NAN; packed_a_len(g.rows(), g.cols())];
            im2col_packed_lhs(&x, &g, &mut pa);
            // Compare through the GEMM: bit-equality required.
            let b: Vec<f32> = (0..g.cols() * 3).map(|i| (i as f32 * 0.13).cos()).collect();
            let mut probe = vec![0.0f32; g.rows() * 3];
            let mut probe2 = vec![0.0f32; g.rows() * 3];
            crate::gemm::gemm_with(
                g.rows(),
                3,
                g.cols(),
                Lhs::Packed(expect.as_ref()),
                Rhs::Mat(MatRef::new(&b, 3)),
                0.0,
                &mut probe,
                3,
                false,
                Epilogue::none(),
            );
            crate::gemm::gemm_with(
                g.rows(),
                3,
                g.cols(),
                Lhs::Packed(PackedARef::new(&pa, g.rows(), g.cols())),
                Rhs::Mat(MatRef::new(&b, 3)),
                0.0,
                &mut probe2,
                3,
                false,
                Epilogue::none(),
            );
            assert!(
                probe
                    .iter()
                    .zip(&probe2)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "geom h{h} w{w} k{k} s{s} p{p} ch{ch}: packed-A lowering differs"
            );
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), c> == <x, col2im(c)> for all x, c — the defining
        // property of the adjoint, checked on a dense basis-free probe.
        let g = geom(5, 6, 3, 2, 1, 2, 0);
        let x: Vec<f32> = (0..g.channels * g.h * g.w)
            .map(|i| (i as f32).sin())
            .collect();
        let c: Vec<f32> = (0..g.col_len()).map(|i| (i as f32 * 0.7).cos()).collect();
        let mut col = vec![0.0f32; g.col_len()];
        im2col(&x, &g, &mut col);
        let lhs: f64 = col
            .iter()
            .zip(&c)
            .map(|(&a, &b)| f64::from(a) * f64::from(b))
            .sum();
        let mut gx = vec![0.0f32; x.len()];
        col2im_add(&c, &g, &mut gx);
        let rhs: f64 = x
            .iter()
            .zip(&gx)
            .map(|(&a, &b)| f64::from(a) * f64::from(b))
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn col2im_accumulates() {
        let g = geom(4, 4, 3, 1, 1, 1, 0);
        let col = vec![1.0f32; g.col_len()];
        let mut gx = vec![0.5f32; g.h * g.w];
        col2im_add(&col, &g, &mut gx);
        // Centre pixels are touched by all 9 kernel offsets.
        assert_eq!(gx[4 + 1], 0.5 + 9.0);
    }
}
