//! # eml-nn
//!
//! A minimal, dependency-light neural-network library built for the `emlrt`
//! reproduction of *Xun et al., "Optimising Resource Management for Embedded
//! Machine Learning" (DATE 2020)*.
//!
//! The paper's dynamic DNN needs three capabilities that off-the-shelf Rust
//! inference crates do not provide together, so this crate implements them
//! from scratch:
//!
//! 1. **Group convolutions** whose channel groups can be *partially
//!    executed* at runtime ([`conv::Conv2d::set_active_groups`], Fig 3c);
//! 2. **Incremental training** that freezes earlier groups bit-identical
//!    while later groups learn ([`train::train_incremental`], Fig 3b);
//! 3. **An exact per-layer cost model** (MACs, parameters) at every width,
//!    which the platform layer turns into latency/energy predictions
//!    ([`network::Network::cost`]).
//!
//! Training data is the procedural [`dataset::SyntheticVision`] set — the
//! documented CIFAR-10 substitution (see `DESIGN.md`).
//!
//! ## Quick start
//!
//! ```
//! use eml_nn::arch::{build_group_cnn, CnnConfig};
//! use eml_nn::dataset::{DatasetConfig, SyntheticVision};
//! use eml_nn::train::{train_incremental, TrainConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), eml_nn::NnError> {
//! let data = SyntheticVision::generate(DatasetConfig::tiny());
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = build_group_cnn(
//!     CnnConfig { input: (3, 8, 8), classes: 4, groups: 2, base_width: 8 },
//!     &mut rng,
//! )?;
//! let cfg = TrainConfig { epochs: 1, ..TrainConfig::default() };
//! let report = train_incremental(&mut net, data.train(), Some(data.test()), &cfg)?;
//! assert_eq!(report.steps.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activation;
pub mod arch;
pub mod conv;
pub mod dataset;
pub mod error;
pub mod gemm;
pub mod im2col;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod metrics;
pub mod network;
pub mod pool;
pub mod quant;
pub mod tensor;
pub mod train;
pub mod workers;

pub use error::{NnError, Result};
pub use gemm::Backend;
pub use layer::{ChainSupport, Layer, LayerCost};
pub use network::{Network, NetworkCost, QuantChainPlan};
pub use quant::{
    layer_io_events, reset_layer_io_events, ActObserver, ActScaleReport, Precision, QAct, QTensor,
};
pub use tensor::Tensor;
