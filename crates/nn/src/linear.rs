//! Fully connected (linear) layer with group-partitioned input features.
//!
//! The classifier of the paper's dynamic DNN sees features from every
//! *active* channel group (Fig 3). Its input features are therefore
//! partitioned into `G` blocks aligned with the channel groups; width
//! scaling truncates to the first `g` blocks and incremental training
//! freezes the weight columns of earlier blocks.
//!
//! Like [`crate::conv::Conv2d`], the layer runs on the blocked GEMM
//! kernel by default ([`Backend::Gemm`]; forward is one
//! `Y = X · Wᵀ + b` product over the batch), on the quantised int8
//! kernel under [`Backend::QuantI8`] (cached int8 `Wᵀ` panels, the
//! batch quantised and packed per call, fused requantisation — the
//! executed data-precision knob), with the original row-by-row dot
//! products retained as [`Backend::Reference`], the oracle for the
//! equivalence property tests.
//!
//! Both weight operands the GEMM path reads — `Wᵀ` in forward and `W`
//! in the input-gradient product — are packed once per weight version
//! and cached, invalidated on updates, width switches and backend
//! changes; the bias add is fused into the forward GEMM's epilogue.

use std::ops::Range;

use rand::Rng;

use crate::error::{NnError, Result};
use crate::gemm::{
    gemm, gemm_i8, gemm_i8_q, gemm_with, pack_a8_i16, pack_a8_quantized, packed_a8_len, Backend,
    Epilogue, Lhs, MatRef, PackedA8Ref, PackedB, PackedB8, QEpilogue, QEpilogueI8, Rhs,
};
use crate::layer::{sgd_update_span, ChainSupport, Layer, LayerCost};
use crate::quant::{finite_max_abs, inv_or_zero, ActObserver, QAct, QTensor, I8_LEVELS};
use crate::tensor::Tensor;

/// A dense layer `y = W·x + b` with width-scalable input features.
#[derive(Debug)]
pub struct Linear {
    name: String,
    in_features: usize,
    out_features: usize,
    prune_groups: usize,
    active: usize,
    trainable: Range<usize>,
    /// Weights, laid out `[out][in]` row-major.
    w: Vec<f32>,
    b: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
    vw: Vec<f32>,
    vb: Vec<f32>,
    cache: Option<Tensor>,
    backend: Backend,
    /// `Wᵀ` (active-width prefix) packed for the forward GEMM.
    packed_fwd: Option<PackedB>,
    /// `W` (active-width prefix) packed for the input-gradient GEMM.
    packed_bwd: Option<PackedB>,
    /// `Wᵀ` (active-width prefix) quantised and packed for the
    /// [`Backend::QuantI8`] forward: per-tensor weight scale + int8
    /// panels, invalidated exactly like [`Linear::packed_fwd`].
    packed_fwd8: Option<(f32, PackedB8)>,
    /// Reusable buffer for the quantised, packed input batch of the
    /// int8 forward; grows once, then reused.
    qx_buf: Vec<i16>,
    /// Bias pre-divided by the chain-edge output scale (the
    /// [`QEpilogueI8`] operand), rebuilt per chained forward without
    /// reallocating.
    qbias_buf: Vec<f32>,
    /// Input-activation range observer for the int8 path (see
    /// [`ActObserver`]).
    act_obs: ActObserver,
}

impl Linear {
    /// Creates the layer with Kaiming-uniform initial weights.
    ///
    /// `prune_groups` must divide `in_features`; pass `1` for a layer that
    /// does not participate in width scaling.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero sizes or indivisible
    /// group counts.
    pub fn new(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        prune_groups: usize,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::InvalidConfig {
                reason: "linear feature counts must be positive".into(),
            });
        }
        if prune_groups == 0 || !in_features.is_multiple_of(prune_groups) {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "in_features {in_features} not divisible by prune_groups {prune_groups}"
                ),
            });
        }
        let limit = (6.0 / in_features as f32).sqrt();
        let w = (0..in_features * out_features)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Ok(Self {
            name: name.into(),
            in_features,
            out_features,
            prune_groups,
            active: prune_groups,
            trainable: 0..prune_groups,
            w,
            b: vec![0.0; out_features],
            gw: vec![0.0; in_features * out_features],
            gb: vec![0.0; out_features],
            vw: vec![0.0; in_features * out_features],
            vb: vec![0.0; out_features],
            cache: None,
            backend: Backend::default(),
            packed_fwd: None,
            packed_bwd: None,
            packed_fwd8: None,
            qx_buf: Vec::new(),
            qbias_buf: Vec::new(),
            act_obs: ActObserver::default(),
        })
    }

    /// Drops the cached packed weight operands (f32 and int8). Must be
    /// called whenever the weights, the active width or the backend
    /// change; the next GEMM pass re-packs lazily.
    fn invalidate_packed(&mut self) {
        self.packed_fwd = None;
        self.packed_bwd = None;
        self.packed_fwd8 = None;
    }

    /// The int8 input-activation observer (range seen so far, frozen
    /// state); see [`ActObserver`].
    pub fn act_observer(&self) -> ActObserver {
        self.act_obs
    }

    /// The currently selected compute backend (see
    /// [`Layer::set_backend`]).
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Number of input features at the current width.
    pub fn active_in_features(&self) -> usize {
        (self.in_features / self.prune_groups) * self.active
    }

    /// The nominal (full-width) input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// The output feature count (not width-scaled).
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Raw weight slice, `[out][in]` row-major (testing/inspection).
    pub fn weights(&self) -> &[f32] {
        &self.w
    }

    fn per_group(&self) -> usize {
        self.in_features / self.prune_groups
    }

    /// Quantises + packs the active `Wᵀ` prefix once per weight
    /// version; the per-tensor scale spans every active weight.
    fn ensure_packed_fwd8(&mut self, f_active: usize) {
        if self.packed_fwd8.is_none() {
            let (w, in_features, out_features) = (&self.w, self.in_features, self.out_features);
            let mut w_max = 0.0f32;
            for of in 0..out_features {
                w_max = w_max.max(finite_max_abs(&w[of * in_features..][..f_active]));
            }
            let w_scale = w_max / I8_LEVELS;
            let inv_w = inv_or_zero(w_scale);
            self.packed_fwd8 = Some((
                w_scale,
                PackedB8::pack_quantized(MatRef::t(w, in_features), f_active, out_features, inv_w),
            ));
        }
    }
}

impl Layer for Linear {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let shape = input.shape();
        let f_active = self.active_in_features();
        if shape.len() != 2 || shape[1] != f_active {
            return Err(NnError::ShapeMismatch {
                context: format!("linear `{}` forward", self.name),
                expected: vec![0, f_active],
                actual: shape.to_vec(),
            });
        }
        let n = shape[0];
        let mut out = Tensor::zeros(&[n, self.out_features]);
        let x = input.data();
        match self.backend {
            Backend::Reference => {
                let o = out.data_mut();
                for ni in 0..n {
                    let xrow = &x[ni * f_active..(ni + 1) * f_active];
                    for of in 0..self.out_features {
                        let wrow = &self.w[of * self.in_features..of * self.in_features + f_active];
                        let mut acc = self.b[of];
                        for (wi, xi) in wrow.iter().zip(xrow) {
                            acc += wi * xi;
                        }
                        o[ni * self.out_features + of] = acc;
                    }
                }
            }
            Backend::Gemm => {
                // Y = X · Wᵀ + b: one product over the whole batch with
                // the cached packed Wᵀ and the bias fused into the
                // epilogue; the kernel splits rows (samples) across
                // workers itself.
                let (w, in_features, out_features) = (&self.w, self.in_features, self.out_features);
                let packed = self.packed_fwd.get_or_insert_with(|| {
                    PackedB::pack(MatRef::t(w, in_features), f_active, out_features)
                });
                gemm_with(
                    n,
                    out_features,
                    f_active,
                    Lhs::Mat(MatRef::new(x, f_active)),
                    Rhs::Packed(packed.as_ref()),
                    0.0,
                    out.data_mut(),
                    out_features,
                    true,
                    Epilogue::bias_col(&self.b),
                );
            }
            Backend::QuantI8 => {
                // Same product on the int8 kernel: Wᵀ quantised
                // per-tensor (over the active column prefix) and packed
                // once per weight version; the batch quantised into
                // packed int8 layout per call (scale from the
                // activation observer); requantisation + bias fused in
                // the epilogue.
                self.ensure_packed_fwd8(f_active);
                let out_features = self.out_features;
                let (x_scale, inv_x) = self.act_obs.observe_scale(x, train);
                crate::quant::count_quantise_pass();
                crate::quant::count_dequantise_pass();
                let (w_scale, packed) = self.packed_fwd8.as_ref().expect("packed above");
                let q_scale = x_scale * w_scale;
                let qx_len = packed_a8_len(n, f_active);
                self.qx_buf.resize(qx_len.max(self.qx_buf.len()), 0);
                pack_a8_quantized(
                    MatRef::new(x, f_active),
                    n,
                    f_active,
                    inv_x,
                    &mut self.qx_buf,
                );
                gemm_i8(
                    n,
                    out_features,
                    f_active,
                    PackedA8Ref::new(&self.qx_buf[..qx_len], n, f_active),
                    packed.as_ref(),
                    out.data_mut(),
                    out_features,
                    true,
                    QEpilogue::scaled(q_scale).with_bias_col(&self.b),
                );
            }
        }
        if train {
            self.cache = Some(input.clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self.cache.as_ref().ok_or_else(|| NnError::InvalidConfig {
            reason: format!("linear `{}`: backward before training forward", self.name),
        })?;
        let f_active = self.active_in_features();
        let n = input.shape()[0];
        grad_out.expect_shape(&[n, self.out_features], "linear backward")?;

        let mut grad_in = Tensor::zeros(&[n, f_active]);
        let x = input.data();
        let go = grad_out.data();
        let gi = grad_in.data_mut();
        match self.backend {
            Backend::Reference => {
                for ni in 0..n {
                    let xrow = &x[ni * f_active..(ni + 1) * f_active];
                    for of in 0..self.out_features {
                        let g = go[ni * self.out_features + of];
                        if g == 0.0 {
                            continue;
                        }
                        self.gb[of] += g;
                        let wbase = of * self.in_features;
                        for fi in 0..f_active {
                            self.gw[wbase + fi] += g * xrow[fi];
                            gi[ni * f_active + fi] += g * self.w[wbase + fi];
                        }
                    }
                }
            }
            // Training under QuantI8 runs the f32 backward against the
            // master weights (the forward cache holds the f32 input).
            Backend::Gemm | Backend::QuantI8 => {
                for row in go.chunks(self.out_features) {
                    for (gb, &g) in self.gb.iter_mut().zip(row) {
                        *gb += g;
                    }
                }
                // gW += dYᵀ · X (into the f_active-column prefix).
                gemm(
                    self.out_features,
                    f_active,
                    n,
                    MatRef::t(go, self.out_features),
                    MatRef::new(x, f_active),
                    1.0,
                    &mut self.gw,
                    self.in_features,
                    true,
                );
                // dX = dY · W (active-column prefix of W, cached
                // packed).
                let (w, in_features, out_features) = (&self.w, self.in_features, self.out_features);
                let packed = self.packed_bwd.get_or_insert_with(|| {
                    PackedB::pack(MatRef::new(w, in_features), out_features, f_active)
                });
                gemm_with(
                    n,
                    f_active,
                    out_features,
                    Lhs::Mat(MatRef::new(go, out_features)),
                    Rhs::Packed(packed.as_ref()),
                    0.0,
                    gi,
                    f_active,
                    true,
                    Epilogue::none(),
                );
            }
        }
        Ok(grad_in)
    }

    fn sgd_step(&mut self, lr: f32, momentum: f32) {
        // A weight column trains iff its feature group is both active
        // and trainable; with `trainable` contiguous that is one column
        // span repeated per output row, so each row updates slice-wise
        // (no per-weight predicate).
        let per_group = self.per_group();
        let in_features = self.in_features;
        let g_lo = self.trainable.start.min(self.active);
        let g_hi = self.trainable.end.min(self.active);
        let (col_lo, col_hi) = (g_lo * per_group, g_hi.max(g_lo) * per_group);
        for of in 0..self.out_features {
            let row = of * in_features..(of + 1) * in_features;
            sgd_update_span(
                &mut self.w[row.clone()],
                &self.gw[row.clone()],
                &mut self.vw[row],
                lr,
                momentum,
                col_lo..col_hi,
            );
        }
        // The shared bias belongs to group 0: training it during later
        // incremental steps would silently change the outputs of earlier
        // (frozen) width configurations, breaking the paper's
        // switch-without-retraining property.
        let bias_span = if self.trainable.contains(&0) {
            0..self.out_features
        } else {
            0..0
        };
        sgd_update_span(&mut self.b, &self.gb, &mut self.vb, lr, momentum, bias_span);
        // The packed operands now describe stale weights.
        self.invalidate_packed();
    }

    fn zero_grads(&mut self) {
        self.gw.fill(0.0);
        self.gb.fill(0.0);
    }

    fn set_active_groups(&mut self, active: usize) -> Result<()> {
        if active == 0 || active > self.prune_groups {
            return Err(NnError::InvalidGroup {
                reason: format!(
                    "linear `{}`: active groups {} not in 1..={}",
                    self.name, active, self.prune_groups
                ),
            });
        }
        self.active = active;
        self.cache = None;
        // The packed operands cover the wrong feature prefix.
        self.invalidate_packed();
        Ok(())
    }

    fn set_trainable_groups(&mut self, groups: Range<usize>) {
        self.trainable = groups;
    }

    fn set_backend(&mut self, backend: Backend) {
        // Re-selecting the current backend keeps the packed caches:
        // an RTM policy may issue its precision choice every control
        // epoch, and a no-op switch must not force a re-pack.
        if backend == self.backend {
            return;
        }
        self.backend = backend;
        // Also frees the panel memory when leaving the GEMM backend.
        self.invalidate_packed();
    }

    fn freeze_act_scale(&mut self, frozen: bool) {
        self.act_obs.freeze(frozen);
    }

    fn quant_observer(&self) -> Option<ActObserver> {
        Some(self.act_obs)
    }

    fn chain_support(&self) -> ChainSupport {
        if self.backend == Backend::QuantI8
            && self.act_obs.is_frozen()
            && self.act_obs.max_abs() > 0.0
        {
            ChainSupport::Quantised {
                in_scale: self.act_obs.scale_for(0.0),
            }
        } else {
            ChainSupport::Breaks
        }
    }

    /// Chained int8 forward: `Y = X · Wᵀ` on the int8 kernel, where a
    /// pre-quantised batch is packed by pure integer copies
    /// ([`pack_a8_i16`]) and the output either dequantises to `f32`
    /// (logits — the usual role of the classifier at the chain's tail)
    /// or requantises onto a successor's grid via [`QEpilogueI8`].
    fn forward_chained(
        &mut self,
        input: QAct,
        out_scale: Option<f32>,
        fuse_relu: bool,
    ) -> Result<QAct> {
        let shape = input.shape().to_vec();
        let f_active = self.active_in_features();
        if shape.len() != 2 || shape[1] != f_active {
            return Err(NnError::ShapeMismatch {
                context: format!("linear `{}` chained forward", self.name),
                expected: vec![0, f_active],
                actual: shape,
            });
        }
        let n = shape[0];
        let out_features = self.out_features;
        self.ensure_packed_fwd8(f_active);
        let qx_len = packed_a8_len(n, f_active);
        self.qx_buf.resize(qx_len.max(self.qx_buf.len()), 0);
        let x_scale = match &input {
            QAct::F32(t) => {
                // Head of the chain: the one f32→i8 quantisation.
                let (scale, inv) = self.act_obs.observe_scale(t.data(), false);
                crate::quant::count_quantise_pass();
                pack_a8_quantized(
                    MatRef::new(t.data(), f_active),
                    n,
                    f_active,
                    inv,
                    &mut self.qx_buf,
                );
                scale
            }
            QAct::I8(q) => {
                // Mid-chain: already on this layer's frozen grid —
                // packing is pure integer copies.
                pack_a8_i16(q.data(), n, f_active, &mut self.qx_buf);
                q.scale()
            }
        };
        let (w_scale, packed) = self.packed_fwd8.as_ref().expect("packed above");
        let q_scale = x_scale * w_scale;
        let qx = PackedA8Ref::new(&self.qx_buf[..qx_len], n, f_active);
        match out_scale {
            None => {
                crate::quant::count_dequantise_pass();
                let mut out = Tensor::zeros(&[n, out_features]);
                let ep = QEpilogue::scaled(q_scale).with_bias_col(&self.b);
                let ep = if fuse_relu { ep.with_relu() } else { ep };
                gemm_i8(
                    n,
                    out_features,
                    f_active,
                    qx,
                    packed.as_ref(),
                    out.data_mut(),
                    out_features,
                    true,
                    ep,
                );
                Ok(QAct::F32(out))
            }
            Some(s_out) => {
                let inv_out = inv_or_zero(s_out);
                self.qbias_buf.clear();
                self.qbias_buf.extend(self.b.iter().map(|&b| b * inv_out));
                let mut out = QTensor::zeros(&[n, out_features], s_out);
                let ep = QEpilogueI8::scaled(q_scale * inv_out).with_bias_col(&self.qbias_buf);
                let ep = if fuse_relu { ep.with_relu() } else { ep };
                gemm_i8_q(
                    n,
                    out_features,
                    f_active,
                    qx,
                    packed.as_ref(),
                    out.data_mut(),
                    out_features,
                    true,
                    ep,
                );
                Ok(QAct::I8(out))
            }
        }
    }

    fn cost(&self, in_shape: &[usize]) -> Result<LayerCost> {
        let f_active = self.active_in_features();
        if in_shape != [f_active] {
            return Err(NnError::ShapeMismatch {
                context: format!("linear `{}` cost", self.name),
                expected: vec![f_active],
                actual: in_shape.to_vec(),
            });
        }
        Ok(LayerCost {
            macs: (f_active * self.out_features) as f64,
            params: f_active * self.out_features + self.out_features,
            out_shape: vec![self.out_features],
        })
    }

    fn param_count_total(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn quantize_weights(&mut self, bits: u32) {
        crate::quant::quantize_slice(&mut self.w, bits);
        crate::quant::quantize_slice(&mut self.b, bits);
        self.invalidate_packed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn construction_validation() {
        assert!(Linear::new("l", 0, 4, 1, &mut rng()).is_err());
        assert!(Linear::new("l", 8, 0, 1, &mut rng()).is_err());
        assert!(Linear::new("l", 8, 4, 3, &mut rng()).is_err());
        assert!(Linear::new("l", 8, 4, 0, &mut rng()).is_err());
        assert!(Linear::new("l", 8, 4, 4, &mut rng()).is_ok());
    }

    #[test]
    fn known_value_forward() {
        let mut l = Linear::new("l", 2, 2, 1, &mut rng()).unwrap();
        l.w.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]); // row 0: [1,2], row 1: [3,4]
        l.b.copy_from_slice(&[0.5, -0.5]);
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]).unwrap();
        let y = l.forward(&x, false).unwrap();
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn width_scaling_uses_weight_prefix() {
        let mut l = Linear::new("l", 4, 1, 4, &mut rng()).unwrap();
        l.w.copy_from_slice(&[1.0, 10.0, 100.0, 1000.0]);
        l.b[0] = 0.0;
        l.set_active_groups(2).unwrap();
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]).unwrap();
        let y = l.forward(&x, false).unwrap();
        assert_eq!(y.data(), &[11.0], "only the first two columns participate");
    }

    #[test]
    fn forward_shape_validation_tracks_width() {
        let mut l = Linear::new("l", 4, 2, 4, &mut rng()).unwrap();
        l.set_active_groups(1).unwrap();
        assert!(l.forward(&Tensor::zeros(&[1, 4]), false).is_err());
        assert!(l.forward(&Tensor::zeros(&[1, 1]), false).is_ok());
    }

    #[test]
    fn gradient_check() {
        let mut l = Linear::new("l", 6, 3, 3, &mut rng()).unwrap();
        let mut r = rng();
        let x = Tensor::from_vec(
            &[2, 6],
            (0..12).map(|_| r.gen_range(-1.0f32..1.0)).collect(),
        )
        .unwrap();
        let y = l.forward(&x, true).unwrap();
        let go = Tensor::full(y.shape(), 1.0);
        let gx = l.backward(&go).unwrap();

        let eps = 1e-3_f32;
        // Direct weight pokes bypass the layer API, so drop the packed
        // operands by hand.
        for &wi in &[0usize, 7, 17] {
            let orig = l.w[wi];
            l.w[wi] = orig + eps;
            l.invalidate_packed();
            let lp = l.forward(&x, false).unwrap().sum();
            l.w[wi] = orig - eps;
            l.invalidate_packed();
            let lm = l.forward(&x, false).unwrap().sum();
            l.w[wi] = orig;
            l.invalidate_packed();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - l.gw[wi]).abs() < 2e-2,
                "weight {wi}: numeric {numeric} vs {}",
                l.gw[wi]
            );
        }
        for &xi in &[0usize, 11] {
            let mut x2 = x.clone();
            x2.data_mut()[xi] += eps;
            let lp = l.forward(&x2, false).unwrap().sum();
            x2.data_mut()[xi] -= 2.0 * eps;
            let lm = l.forward(&x2, false).unwrap().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - gx.data()[xi]).abs() < 2e-2);
        }
        // dL/db = batch size per output.
        assert!((l.gb[0] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn sgd_freezes_earlier_group_columns() {
        let mut l = Linear::new("l", 4, 2, 4, &mut rng()).unwrap();
        let w0 = l.w.clone();
        l.set_active_groups(2).unwrap();
        l.set_trainable_groups(1..2);
        let x = Tensor::full(&[1, 2], 1.0);
        let y = l.forward(&x, true).unwrap();
        let _ = l.backward(&Tensor::full(y.shape(), 1.0)).unwrap();
        l.sgd_step(0.1, 0.0);
        // Column 0 (group 0) frozen, column 1 (group 1) updated, columns
        // 2-3 inactive.
        for of in 0..2 {
            assert_eq!(l.w[of * 4], w0[of * 4], "group-0 column frozen");
            assert_ne!(l.w[of * 4 + 1], w0[of * 4 + 1], "group-1 column updated");
            assert_eq!(l.w[of * 4 + 2], w0[of * 4 + 2], "inactive column");
            assert_eq!(l.w[of * 4 + 3], w0[of * 4 + 3], "inactive column");
        }
        // Bias belongs to group 0, which is frozen here.
        assert_eq!(l.b[0], 0.0);
    }

    #[test]
    fn bias_trains_with_group_zero() {
        let mut l = Linear::new("l", 4, 2, 4, &mut rng()).unwrap();
        l.set_trainable_groups(0..1);
        let x = Tensor::full(&[1, 4], 1.0);
        let y = l.forward(&x, true).unwrap();
        let _ = l.backward(&Tensor::full(y.shape(), 1.0)).unwrap();
        l.sgd_step(0.1, 0.0);
        assert_ne!(l.b[0], 0.0, "bias updates while group 0 is trainable");
    }

    #[test]
    fn cost_scales_with_width() {
        let mut l = Linear::new("l", 8, 10, 4, &mut rng()).unwrap();
        let full = l.cost(&[8]).unwrap();
        assert_eq!(full.macs, 80.0);
        assert_eq!(full.params, 90);
        l.set_active_groups(1).unwrap();
        let quarter = l.cost(&[2]).unwrap();
        assert_eq!(quarter.macs, 20.0);
        assert_eq!(quarter.out_shape, vec![10]);
        assert_eq!(l.param_count_total(), 90);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut l = Linear::new("l", 4, 2, 1, &mut rng()).unwrap();
        assert!(l.backward(&Tensor::zeros(&[1, 2])).is_err());
    }
}
