//! The [`Layer`] trait: the unit of composition for networks.
//!
//! Layers own their parameters, gradients and momentum buffers, and are
//! **width-aware**: layers that participate in the dynamic-DNN group
//! partition (convolutions, the classifier) implement
//! [`Layer::set_active_groups`] to restrict execution to the first `g` of
//! `G` channel groups, and [`Layer::set_trainable_groups`] so the
//! incremental-training schedule of the paper's Fig 3(b) can freeze earlier
//! groups while later groups learn.

use std::fmt;
use std::ops::Range;

use crate::error::{NnError, Result};
use crate::gemm::Backend;
use crate::quant::{ActObserver, QAct};
use crate::tensor::Tensor;

/// How a layer can participate in a chained-int8 forward pass (see
/// [`crate::network::Network::plan_quant_chain`] and the chaining
/// section of [`crate::quant`]'s module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChainSupport {
    /// Cannot run on quantised activations: any chain ends before this
    /// layer (its predecessor dequantises to `f32`). The default.
    Breaks,
    /// Order-preserving on the int8 grid (MaxPool, Flatten): passes a
    /// quantised activation through at its incoming scale.
    Transparent,
    /// ReLU: order-preserving like [`ChainSupport::Transparent`], and
    /// additionally **fusable** into the preceding quantised layer's
    /// requantisation epilogue as a free `max(0)`.
    TransparentRelu,
    /// A quantised compute layer with a **frozen** input-activation
    /// scale: consumes int8 input on that grid and can emit int8
    /// output at any requested scale.
    Quantised {
        /// The layer's frozen input-activation quantisation scale —
        /// the per-edge scale the planning pass resolves.
        in_scale: f32,
    },
}

/// Per-sample cost of a layer at its current active width.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCost {
    /// Multiply-accumulate operations for one sample.
    pub macs: f64,
    /// Number of parameters used at the current width.
    pub params: usize,
    /// Output shape for one sample (no batch axis).
    pub out_shape: Vec<usize>,
}

/// A differentiable network layer.
///
/// The forward/backward contract: `forward(input, train=true)` caches
/// whatever `backward` needs; `backward(grad_out)` accumulates parameter
/// gradients and returns the gradient with respect to the layer input.
/// Batch dimension is always axis 0.
///
/// `Send` is a supertrait so a whole [`crate::Network`] can move onto a
/// serving thread; layers are owned data (weights, scratch, observers)
/// with no thread affinity.
pub trait Layer: fmt::Debug + Send {
    /// A short human-readable name (e.g. `"conv1"`).
    fn name(&self) -> &str;

    /// Computes the layer output. When `train` is true, caches activations
    /// for a following [`Layer::backward`] call.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::ShapeMismatch`] if the input does not have
    /// the shape the layer expects at its current active width.
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor>;

    /// Back-propagates `grad_out`, accumulating parameter gradients and
    /// returning the gradient with respect to the input.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::ShapeMismatch`] if `grad_out` does not
    /// match the last forward output, or [`crate::NnError::InvalidConfig`]
    /// if called before a training-mode forward pass.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// [`Layer::backward`] for the *first* layer of a network: only the
    /// parameter gradients are needed, the input gradient would be
    /// discarded. Layers with an expensive input-gradient path override
    /// this to skip it ([`crate::conv::Conv2d`] saves one GEMM plus the
    /// adjoint scatter per sample and group); the default just drops
    /// the result.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Layer::backward`].
    fn backward_params(&mut self, grad_out: &Tensor) -> Result<()> {
        self.backward(grad_out).map(|_| ())
    }

    /// Applies one SGD-with-momentum update to the trainable parameters and
    /// leaves frozen groups untouched. No-op for parameter-free layers.
    fn sgd_step(&mut self, _lr: f32, _momentum: f32) {}

    /// Clears accumulated gradients. No-op for parameter-free layers.
    fn zero_grads(&mut self) {}

    /// Restricts execution to the first `active` of the layer's `G` channel
    /// groups. Layers that do not partition channels ignore this.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::InvalidGroup`] if `active` is zero or
    /// exceeds the layer's group count.
    fn set_active_groups(&mut self, _active: usize) -> Result<()> {
        Ok(())
    }

    /// Marks which group indices may be updated by [`Layer::sgd_step`];
    /// everything else is frozen. Layers without parameters ignore this.
    fn set_trainable_groups(&mut self, _groups: Range<usize>) {}

    /// Selects the compute backend for layers with a choice of
    /// implementations ([`crate::conv::Conv2d`],
    /// [`crate::linear::Linear`]); everything else ignores it. The
    /// default everywhere is [`Backend::Gemm`]; [`Backend::Reference`]
    /// is the slow loop-nest oracle used by equivalence tests;
    /// [`Backend::QuantI8`] runs forward passes on the real int8
    /// kernel (the executed data-precision knob, see [`crate::quant`]).
    fn set_backend(&mut self, _backend: Backend) {}

    /// Freezes (or unfreezes) the layer's int8 activation-quantisation
    /// scale at the range observed so far (see
    /// [`crate::quant::ActObserver`]). No-op for layers without an
    /// int8 path.
    fn freeze_act_scale(&mut self, _frozen: bool) {}

    /// The layer's int8 input-activation observer, if it has one
    /// (`Conv2d`/`Linear`). Used by
    /// [`crate::network::Network::calibrate`] to build the per-layer
    /// scale report.
    fn quant_observer(&self) -> Option<ActObserver> {
        None
    }

    /// How this layer can participate in a chained-int8 forward pass
    /// (see [`ChainSupport`]). The default — [`ChainSupport::Breaks`]
    /// — keeps a layer out of every chain.
    fn chain_support(&self) -> ChainSupport {
        ChainSupport::Breaks
    }

    /// One chained-int8 forward step (inference only — never caches
    /// for backward). Called by the network executor strictly per the
    /// plan [`crate::network::Network::plan_quant_chain`] computed, so
    /// implementations may assume the input form matches what their
    /// [`Layer::chain_support`] advertised: quantised layers accept
    /// either form (an `f32` input is quantised once at the frozen
    /// scale — the head of a chain), transparent layers require
    /// [`QAct::I8`]. When `out_scale` is `Some(s)`, a quantised layer
    /// must emit int8 output on the grid `s` (the next quantised
    /// layer's frozen input scale), with ReLU fused into the
    /// requantisation when `fuse_relu` is set; with `None` it emits
    /// `f32`.
    ///
    /// # Errors
    ///
    /// The default returns [`NnError::InvalidConfig`]: layers that
    /// advertise [`ChainSupport::Breaks`] are never scheduled chained.
    fn forward_chained(
        &mut self,
        _input: QAct,
        _out_scale: Option<f32>,
        _fuse_relu: bool,
    ) -> Result<QAct> {
        Err(NnError::InvalidConfig {
            reason: format!("layer `{}` cannot run in a quantised chain", self.name()),
        })
    }

    /// Cost of this layer at its *current* active width for one sample of
    /// `in_shape` (no batch axis).
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::ShapeMismatch`] if `in_shape` is not
    /// compatible with the layer.
    fn cost(&self, in_shape: &[usize]) -> Result<LayerCost>;

    /// Total parameter count across *all* groups (the single-model memory
    /// footprint the paper contrasts with storing one model per
    /// configuration).
    fn param_count_total(&self) -> usize {
        0
    }

    /// Snaps the layer's weights to a `bits`-bit symmetric uniform grid
    /// (see [`crate::quant`]). No-op for parameter-free layers; `bits` is
    /// validated by the caller.
    fn quantize_weights(&mut self, _bits: u32) {}
}

/// Helper: SGD-with-momentum update for one parameter slice, respecting a
/// per-parameter freeze predicate.
///
/// `v ← μ·v − lr·g; w ← w + v` for unfrozen parameters; frozen parameters
/// keep their velocity zeroed so later unfreezing starts cold.
///
/// Retained as the oracle for `sgd_update_span`, which is what the
/// layers call on their hot path.
#[cfg(test)]
pub(crate) fn sgd_update(
    w: &mut [f32],
    g: &[f32],
    v: &mut [f32],
    lr: f32,
    momentum: f32,
    mut frozen: impl FnMut(usize) -> bool,
) {
    debug_assert_eq!(w.len(), g.len());
    debug_assert_eq!(w.len(), v.len());
    for i in 0..w.len() {
        if frozen(i) {
            v[i] = 0.0;
            continue;
        }
        v[i] = momentum * v[i] - lr * g[i];
        w[i] += v[i];
    }
}

/// Range-based SGD-with-momentum update for layers whose freeze
/// pattern is a contiguous trainable span inside each parameter block:
/// elements in `train` get the dense momentum update
/// (`v ← μ·v − lr·g; w ← w + v`), everything else only has its
/// velocity cleared. Same element-wise arithmetic as the predicate
/// form `sgd_update` (bit-identical results, pinned by a test), but
/// branch- and division-free — a per-index predicate costs real time
/// when a training step updates tens of thousands of parameters.
pub(crate) fn sgd_update_span(
    w: &mut [f32],
    g: &[f32],
    v: &mut [f32],
    lr: f32,
    momentum: f32,
    train: std::ops::Range<usize>,
) {
    debug_assert_eq!(w.len(), g.len());
    debug_assert_eq!(w.len(), v.len());
    debug_assert!(train.start <= train.end && train.end <= w.len());
    v[..train.start].fill(0.0);
    v[train.end..].fill(0.0);
    let (w, g, v) = (
        &mut w[train.clone()],
        &g[train.clone()],
        &mut v[train.clone()],
    );
    for ((w, &g), v) in w.iter_mut().zip(g).zip(v.iter_mut()) {
        *v = momentum * *v - lr * g;
        *w += *v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_update_applies_momentum() {
        let mut w = vec![1.0, 1.0];
        let g = vec![0.5, 0.5];
        let mut v = vec![0.0, 0.0];
        sgd_update(&mut w, &g, &mut v, 0.1, 0.9, |_| false);
        assert!((w[0] - 0.95).abs() < 1e-6);
        // Second step: velocity compounds.
        sgd_update(&mut w, &g, &mut v, 0.1, 0.9, |_| false);
        assert!((w[0] - (0.95 - 0.05 * 0.9 - 0.05)).abs() < 1e-6);
    }

    #[test]
    fn sgd_update_respects_freeze_mask() {
        let mut w = vec![1.0, 1.0];
        let g = vec![0.5, 0.5];
        let mut v = vec![0.3, 0.3];
        sgd_update(&mut w, &g, &mut v, 0.1, 0.9, |i| i == 0);
        assert_eq!(w[0], 1.0, "frozen weight untouched");
        assert_eq!(v[0], 0.0, "frozen velocity cleared");
        assert!(w[1] != 1.0, "unfrozen weight updated");
    }

    #[test]
    fn sgd_update_span_matches_predicate_form() {
        let g: Vec<f32> = (0..12).map(|i| (i as f32 * 0.7).sin()).collect();
        for (lo, hi) in [(0usize, 12usize), (3, 9), (0, 0), (12, 12), (5, 5)] {
            let mut w1: Vec<f32> = (0..12).map(|i| i as f32 * 0.1).collect();
            let mut v1 = vec![0.25f32; 12];
            let mut w2 = w1.clone();
            let mut v2 = v1.clone();
            sgd_update(&mut w1, &g, &mut v1, 0.05, 0.9, |i| !(lo..hi).contains(&i));
            sgd_update_span(&mut w2, &g, &mut v2, 0.05, 0.9, lo..hi);
            assert_eq!(w1, w2, "span {lo}..{hi} weights");
            assert_eq!(v1, v2, "span {lo}..{hi} velocities");
        }
    }
}
