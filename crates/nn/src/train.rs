//! Training loops: standard SGD and the paper's incremental (freeze-group)
//! schedule.
//!
//! Incremental training (Fig 3b):
//!
//! ```text
//! Initialization: all groups untrained.
//! Step 1: train group 1 of all layers, ignore groups 2–G.
//! Step k: train group k of all layers while incorporating the pretrained,
//!         frozen groups 1..k; ignore groups k+1..G.
//! ```
//!
//! After step `k`, configurations `1..=k` are all usable — switching between
//! them at runtime needs no retraining, because earlier groups are frozen
//! bit-identical while later groups learn around them.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::{make_batch, Sample};
use crate::error::Result;
use crate::metrics::{evaluate, Evaluation};
use crate::network::Network;

/// Hyper-parameters for one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
    /// Shuffle seed (training is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 8,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            lr_decay: 0.85,
            seed: 7,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub loss: f32,
    /// Learning rate used this epoch.
    pub lr: f32,
}

/// Trains the network at its *current* width and trainable-group setting.
///
/// Returns per-epoch statistics. The caller controls width/freezing; for
/// the paper's schedule use [`train_incremental`].
///
/// # Errors
///
/// Propagates network errors; returns an empty vec for an empty training
/// set.
pub fn train(net: &mut Network, samples: &[Sample], cfg: &TrainConfig) -> Result<Vec<EpochStats>> {
    if samples.is_empty() {
        return Ok(Vec::new());
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut indices: Vec<usize> = (0..samples.len()).collect();
    let mut lr = cfg.lr;
    let mut stats = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        indices.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in indices.chunks(cfg.batch_size.max(1)) {
            let (x, labels) = make_batch(samples, chunk);
            net.zero_grads();
            let out = net.train_batch(&x, &labels)?;
            net.sgd_step(lr, cfg.momentum);
            loss_sum += out.loss as f64;
            batches += 1;
        }
        stats.push(EpochStats {
            epoch,
            loss: (loss_sum / batches.max(1) as f64) as f32,
            lr,
        });
        lr *= cfg.lr_decay;
    }
    Ok(stats)
}

/// Statistics of one incremental-training step.
#[derive(Debug, Clone)]
pub struct StepStats {
    /// Group index that was trained (0-based).
    pub group: usize,
    /// Active width during this step (`group + 1` of `G`).
    pub active_groups: usize,
    /// Per-epoch loss curve of the step.
    pub epochs: Vec<EpochStats>,
    /// Evaluation at this width after the step, if a test set was given.
    pub eval: Option<Evaluation>,
}

/// Report of a full incremental-training run.
#[derive(Debug, Clone)]
pub struct IncrementalReport {
    /// One entry per group, in training order.
    pub steps: Vec<StepStats>,
}

impl IncrementalReport {
    /// Top-1 accuracy after each step (`None` entries skipped), i.e. the
    /// accuracy of each width configuration — the paper's Fig 4(b) series.
    pub fn accuracy_per_width(&self) -> Vec<f64> {
        self.steps
            .iter()
            .filter_map(|s| s.eval.as_ref().map(|e| e.top1))
            .collect()
    }
}

/// Runs the paper's incremental-training schedule over all `G` groups.
///
/// After completion the network is at full width with every group
/// populated; switching to any narrower width reuses the parameters frozen
/// at the corresponding step.
///
/// # Errors
///
/// Propagates network errors.
pub fn train_incremental(
    net: &mut Network,
    samples: &[Sample],
    eval_samples: Option<&[Sample]>,
    cfg: &TrainConfig,
) -> Result<IncrementalReport> {
    let groups = net.groups();
    let mut steps = Vec::with_capacity(groups);
    for g in 0..groups {
        net.set_active_groups(g + 1)?;
        net.set_trainable_groups(g..g + 1);
        let step_cfg = TrainConfig {
            seed: cfg.seed.wrapping_add(g as u64),
            ..cfg.clone()
        };
        let epochs = train(net, samples, &step_cfg)?;
        let eval = match eval_samples {
            Some(t) => Some(evaluate(net, t, cfg.batch_size.max(1))?),
            None => None,
        };
        steps.push(StepStats {
            group: g,
            active_groups: g + 1,
            epochs,
            eval,
        });
    }
    // Leave the network fully trainable at full width.
    net.set_trainable_groups(0..groups);
    Ok(IncrementalReport { steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{build_group_cnn, CnnConfig};
    use crate::dataset::{DatasetConfig, SyntheticVision};
    use rand::rngs::StdRng;

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 0.08,
            ..TrainConfig::default()
        }
    }

    fn small_setup() -> (Network, SyntheticVision) {
        let data = SyntheticVision::generate(DatasetConfig::tiny());
        let mut rng = StdRng::seed_from_u64(3);
        let net = build_group_cnn(
            CnnConfig {
                input: (3, 8, 8),
                classes: 4,
                groups: 2,
                base_width: 8,
            },
            &mut rng,
        )
        .unwrap();
        (net, data)
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let (mut net, data) = small_setup();
        let stats = train(&mut net, data.train(), &quick_cfg()).unwrap();
        assert_eq!(stats.len(), 2);
        assert!(
            stats[1].loss < stats[0].loss,
            "loss should fall: {} -> {}",
            stats[0].loss,
            stats[1].loss
        );
    }

    #[test]
    fn lr_decays_between_epochs() {
        let (mut net, data) = small_setup();
        let cfg = TrainConfig {
            epochs: 3,
            lr_decay: 0.5,
            ..quick_cfg()
        };
        let stats = train(&mut net, data.train(), &cfg).unwrap();
        assert!((stats[1].lr - stats[0].lr * 0.5).abs() < 1e-9);
        assert!((stats[2].lr - stats[0].lr * 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_training_set_is_noop() {
        let (mut net, _) = small_setup();
        let stats = train(&mut net, &[], &quick_cfg()).unwrap();
        assert!(stats.is_empty());
    }

    #[test]
    fn training_is_deterministic() {
        let (mut a, data) = small_setup();
        let (mut b, _) = small_setup();
        let sa = train(&mut a, data.train(), &quick_cfg()).unwrap();
        let sb = train(&mut b, data.train(), &quick_cfg()).unwrap();
        for (x, y) in sa.iter().zip(&sb) {
            assert_eq!(x.loss, y.loss);
        }
    }

    #[test]
    fn incremental_training_covers_all_groups() {
        let (mut net, data) = small_setup();
        let report =
            train_incremental(&mut net, data.train(), Some(data.test()), &quick_cfg()).unwrap();
        assert_eq!(report.steps.len(), 2);
        assert_eq!(report.steps[0].active_groups, 1);
        assert_eq!(report.steps[1].active_groups, 2);
        assert_eq!(report.accuracy_per_width().len(), 2);
        // Network ends at full width.
        assert_eq!(net.active_groups(), 2);
    }

    #[test]
    fn incremental_training_freezes_earlier_widths() {
        // After the full schedule, switching back to width 1 must produce
        // identical logits to what width 1 produced right after step 1:
        // later steps may not disturb group-0 parameters.
        let (mut net, data) = small_setup();
        let x = crate::dataset::make_batch(data.test(), &[0, 1, 2]).0;

        // Step 1 manually.
        net.set_active_groups(1).unwrap();
        net.set_trainable_groups(0..1);
        train(&mut net, data.train(), &quick_cfg()).unwrap();
        let logits_after_step1 = net.forward(&x, false).unwrap();

        // Step 2.
        net.set_active_groups(2).unwrap();
        net.set_trainable_groups(1..2);
        train(&mut net, data.train(), &quick_cfg()).unwrap();

        // Back to width 1: bit-identical logits.
        net.set_active_groups(1).unwrap();
        let logits_now = net.forward(&x, false).unwrap();
        assert_eq!(logits_after_step1.data(), logits_now.data());
    }
}
