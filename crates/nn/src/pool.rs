//! Spatial pooling layers.

use crate::error::{NnError, Result};
use crate::layer::{ChainSupport, Layer, LayerCost};
use crate::quant::{QAct, QTensor};
use crate::tensor::Tensor;

/// 2-D max pooling with square window and stride equal to the window size.
#[derive(Debug)]
pub struct MaxPool2d {
    name: String,
    window: usize,
    /// Cached argmax offsets (into the input data) for backward.
    argmax: Option<(Vec<usize>, Vec<usize>)>, // (input shape flattened marker, offsets)
    in_shape: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with a `window × window` kernel and the same
    /// stride.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero (programmer error).
    pub fn new(name: impl Into<String>, window: usize) -> Self {
        assert!(window > 0, "pool window must be positive");
        Self {
            name: name.into(),
            window,
            argmax: None,
            in_shape: None,
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (h / self.window, w / self.window)
    }

    /// The generic window loop, tracking argmax when `offsets` is
    /// given. `plane` is the offset of the current channel plane.
    #[allow(clippy::too_many_arguments)]
    fn pool_plane(
        &self,
        x: &[f32],
        plane: usize,
        h: usize,
        w: usize,
        o: &mut [f32],
        mut offsets: Option<&mut [usize]>,
        oi0: usize,
    ) {
        let (oh, ow) = self.out_hw(h, w);
        let win = self.window;
        if win == 2 {
            // Fast path for the ubiquitous 2×2 window: two row slices
            // per output row instead of four indexed lookups per
            // output. First maximum wins, as in the generic loop.
            for ohy in 0..oh {
                let row0 = plane + (2 * ohy) * w;
                let r0 = &x[row0..][..w];
                let r1 = &x[row0 + w..][..w];
                let orow = &mut o[oi0 + ohy * ow..][..ow];
                match offsets.as_deref_mut() {
                    None => {
                        for (owx, out) in orow.iter_mut().enumerate() {
                            // Strict comparisons (not f32::max) so NaN
                            // candidates are skipped exactly as in the
                            // train path and the generic loop below.
                            let i = 2 * owx;
                            let mut best = f32::NEG_INFINITY;
                            for &v in &[r0[i], r0[i + 1], r1[i], r1[i + 1]] {
                                if v > best {
                                    best = v;
                                }
                            }
                            *out = best;
                        }
                    }
                    Some(offs) => {
                        let offs = &mut offs[oi0 + ohy * ow..][..ow];
                        for (owx, (out, off)) in orow.iter_mut().zip(offs).enumerate() {
                            let i = 2 * owx;
                            // Seed with -inf and use the generic loop's
                            // strict comparisons so a NaN candidate is
                            // skipped (not propagated) exactly as in
                            // eval mode and the window > 2 path.
                            let mut best = f32::NEG_INFINITY;
                            let mut best_off = row0 + i;
                            if r0[i] > best {
                                best = r0[i];
                                best_off = row0 + i;
                            }
                            if r0[i + 1] > best {
                                best = r0[i + 1];
                                best_off = row0 + i + 1;
                            }
                            if r1[i] > best {
                                best = r1[i];
                                best_off = row0 + w + i;
                            }
                            if r1[i + 1] > best {
                                best = r1[i + 1];
                                best_off = row0 + w + i + 1;
                            }
                            *out = best;
                            *off = best_off;
                        }
                    }
                }
            }
            return;
        }
        let mut oi = oi0;
        let mut offsets = offsets;
        for ohy in 0..oh {
            for owx in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_off = 0;
                for ky in 0..win {
                    for kx in 0..win {
                        let off = plane + (ohy * win + ky) * w + owx * win + kx;
                        if x[off] > best {
                            best = x[off];
                            best_off = off;
                        }
                    }
                }
                o[oi] = best;
                if let Some(offs) = offsets.as_deref_mut() {
                    offs[oi] = best_off;
                }
                oi += 1;
            }
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let shape = input.shape();
        if shape.len() != 4 {
            return Err(NnError::ShapeMismatch {
                context: format!("maxpool `{}` forward", self.name),
                expected: vec![0, 0, 0, 0],
                actual: shape.to_vec(),
            });
        }
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        if h < self.window || w < self.window {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "maxpool `{}`: input {h}x{w} smaller than window {}",
                    self.name, self.window
                ),
                expected: vec![self.window, self.window],
                actual: vec![h, w],
            });
        }
        let (oh, ow) = self.out_hw(h, w);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let x = input.data();
        // Argmax bookkeeping only exists in training mode; the buffer
        // is reused across steps (no per-call alloc).
        let mut offsets = if train {
            let (_, mut offs) = self.argmax.take().unwrap_or_default();
            offs.clear();
            offs.resize(n * c * oh * ow, 0);
            Some(offs)
        } else {
            None
        };
        let o = out.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let plane = (ni * c + ci) * h * w;
                let oi0 = (ni * c + ci) * oh * ow;
                self.pool_plane(x, plane, h, w, o, offsets.as_deref_mut(), oi0);
            }
        }
        if let Some(offsets) = offsets {
            self.argmax = Some((vec![x.len()], offsets));
            self.in_shape = Some(shape.to_vec());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let (marker, offsets) = self.argmax.as_ref().ok_or_else(|| NnError::InvalidConfig {
            reason: format!("maxpool `{}`: backward before training forward", self.name),
        })?;
        if grad_out.len() != offsets.len() {
            return Err(NnError::ShapeMismatch {
                context: format!("maxpool `{}` backward", self.name),
                expected: vec![offsets.len()],
                actual: vec![grad_out.len()],
            });
        }
        let in_shape = self.in_shape.as_ref().expect("set with argmax");
        let mut grad_in = Tensor::zeros(in_shape);
        debug_assert_eq!(grad_in.len(), marker[0]);
        let gi = grad_in.data_mut();
        for (o, &off) in grad_out.data().iter().zip(offsets) {
            gi[off] += o;
        }
        Ok(grad_in)
    }

    fn cost(&self, in_shape: &[usize]) -> Result<LayerCost> {
        if in_shape.len() != 3 {
            return Err(NnError::ShapeMismatch {
                context: format!("maxpool `{}` cost", self.name),
                expected: vec![0, 0, 0],
                actual: in_shape.to_vec(),
            });
        }
        let (oh, ow) = self.out_hw(in_shape[1], in_shape[2]);
        Ok(LayerCost {
            macs: 0.0,
            params: 0,
            out_shape: vec![in_shape[0], oh, ow],
        })
    }

    fn chain_support(&self) -> ChainSupport {
        // max commutes exactly with the monotone round-and-clamp of
        // requantisation, so pooling on the int8 grid equals pooling
        // in f32 and quantising after — order-preserving.
        ChainSupport::Transparent
    }

    /// Int8 fast path: the same window maximum over grid values
    /// (integer compares, no argmax bookkeeping — chains run inference
    /// only), passing the incoming scale through unchanged.
    fn forward_chained(
        &mut self,
        input: QAct,
        _out_scale: Option<f32>,
        _fuse_relu: bool,
    ) -> Result<QAct> {
        let QAct::I8(q) = input else {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "maxpool `{}`: chained forward needs quantised input",
                    self.name
                ),
            });
        };
        let shape = q.shape();
        if shape.len() != 4 {
            return Err(NnError::ShapeMismatch {
                context: format!("maxpool `{}` chained forward", self.name),
                expected: vec![0, 0, 0, 0],
                actual: shape.to_vec(),
            });
        }
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        if h < self.window || w < self.window {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "maxpool `{}`: input {h}x{w} smaller than window {}",
                    self.name, self.window
                ),
                expected: vec![self.window, self.window],
                actual: vec![h, w],
            });
        }
        let (oh, ow) = self.out_hw(h, w);
        let win = self.window;
        let mut out = QTensor::zeros(&[n, c, oh, ow], q.scale());
        let x = q.data();
        let o = out.data_mut();
        for plane_idx in 0..n * c {
            let plane = plane_idx * h * w;
            let oi0 = plane_idx * oh * ow;
            if win == 2 {
                // 2×2 fast path, mirroring the f32 form: two row
                // slices per output row instead of indexed lookups.
                for ohy in 0..oh {
                    let row0 = plane + (2 * ohy) * w;
                    let r0 = &x[row0..][..w];
                    let r1 = &x[row0 + w..][..w];
                    let orow = &mut o[oi0 + ohy * ow..][..ow];
                    for (owx, out_v) in orow.iter_mut().enumerate() {
                        let i = 2 * owx;
                        *out_v = r0[i].max(r0[i + 1]).max(r1[i]).max(r1[i + 1]);
                    }
                }
                continue;
            }
            for ohy in 0..oh {
                for owx in 0..ow {
                    let mut best = i16::MIN;
                    for ky in 0..win {
                        let row = plane + (ohy * win + ky) * w + owx * win;
                        for &v in &x[row..row + win] {
                            if v > best {
                                best = v;
                            }
                        }
                    }
                    o[oi0 + ohy * ow + owx] = best;
                }
            }
        }
        Ok(QAct::I8(out))
    }
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    name: String,
    in_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a named global-average-pool layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            in_shape: None,
        }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let shape = input.shape();
        if shape.len() != 4 {
            return Err(NnError::ShapeMismatch {
                context: format!("gap `{}` forward", self.name),
                expected: vec![0, 0, 0, 0],
                actual: shape.to_vec(),
            });
        }
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let hw = (h * w) as f32;
        let mut out = Tensor::zeros(&[n, c]);
        let x = input.data();
        let o = out.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let plane = (ni * c + ci) * h * w;
                let s: f32 = x[plane..plane + h * w].iter().sum();
                o[ni * c + ci] = s / hw;
            }
        }
        if train {
            self.in_shape = Some(shape.to_vec());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let shape = self
            .in_shape
            .clone()
            .ok_or_else(|| NnError::InvalidConfig {
                reason: format!("gap `{}`: backward before training forward", self.name),
            })?;
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        grad_out.expect_shape(&[n, c], "global avg pool backward")?;
        let hw = (h * w) as f32;
        let mut grad_in = Tensor::zeros(&shape);
        let gi = grad_in.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let g = grad_out.at(&[ni, ci]) / hw;
                let plane = (ni * c + ci) * h * w;
                for v in &mut gi[plane..plane + h * w] {
                    *v = g;
                }
            }
        }
        Ok(grad_in)
    }

    fn cost(&self, in_shape: &[usize]) -> Result<LayerCost> {
        if in_shape.len() != 3 {
            return Err(NnError::ShapeMismatch {
                context: format!("gap `{}` cost", self.name),
                expected: vec![0, 0, 0],
                actual: in_shape.to_vec(),
            });
        }
        Ok(LayerCost {
            macs: 0.0,
            params: 0,
            out_shape: vec![in_shape[0]],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_forward_picks_window_max() {
        let mut p = MaxPool2d::new("p", 2);
        let x =
            Tensor::from_vec(&[1, 1, 2, 4], vec![1.0, 2.0, 5.0, 3.0, 4.0, 0.0, -1.0, 6.0]).unwrap();
        let y = p.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &[1, 1, 1, 2]);
        assert_eq!(y.data(), &[4.0, 6.0]);
    }

    #[test]
    fn maxpool_backward_routes_gradient_to_argmax() {
        let mut p = MaxPool2d::new("p", 2);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 9.0, 3.0, 4.0]).unwrap();
        let _ = p.forward(&x, true).unwrap();
        let g = Tensor::full(&[1, 1, 1, 1], 2.0);
        let gi = p.backward(&g).unwrap();
        assert_eq!(gi.data(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_truncates_odd_sizes() {
        let mut p = MaxPool2d::new("p", 2);
        let x = Tensor::zeros(&[1, 1, 5, 5]);
        let y = p.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
    }

    #[test]
    fn maxpool_rejects_small_input_and_bad_rank() {
        let mut p = MaxPool2d::new("p", 4);
        assert!(p.forward(&Tensor::zeros(&[1, 1, 2, 2]), false).is_err());
        assert!(p.forward(&Tensor::zeros(&[1, 4]), false).is_err());
    }

    #[test]
    fn maxpool_backward_needs_forward() {
        let mut p = MaxPool2d::new("p", 2);
        assert!(p.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
    }

    #[test]
    fn gap_forward_and_backward() {
        let mut g = GlobalAvgPool::new("g");
        let x = Tensor::from_vec(
            &[1, 2, 2, 2],
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
        )
        .unwrap();
        let y = g.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 10.0]);
        let go = Tensor::from_vec(&[1, 2], vec![4.0, 8.0]).unwrap();
        let gi = g.backward(&go).unwrap();
        assert_eq!(gi.shape(), x.shape());
        assert_eq!(gi.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(gi.at(&[0, 1, 1, 1]), 2.0);
    }

    #[test]
    fn pool_costs_propagate_shape() {
        let p = MaxPool2d::new("p", 2);
        assert_eq!(p.cost(&[8, 16, 16]).unwrap().out_shape, vec![8, 8, 8]);
        let g = GlobalAvgPool::new("g");
        assert_eq!(g.cost(&[8, 4, 4]).unwrap().out_shape, vec![8]);
        assert!(p.cost(&[8, 16]).is_err());
        assert!(g.cost(&[8]).is_err());
    }
}
