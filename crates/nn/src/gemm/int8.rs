//! Quantised `i8×i8→i32` GEMM — the integer twin of the `f32` kernel
//! in [`crate::gemm`], used by [`crate::gemm::Backend::QuantI8`].
//!
//! # Int8 kernel layout
//!
//! The blocked structure mirrors the `f32` kernel (MR-tall A row
//! strips, NR-wide B column strips, zero-padded, one panel group per
//! K-slice), with three quantisation-specific differences:
//!
//! - values are quantised to the symmetric int8 grid `[-127, 127]`
//!   **during packing** (`round(x · inv_scale)`, saturating), so
//!   quantisation is never a separate pass over the data. They are
//!   *stored* as `i16` in **pair-interleaved** panels — for k-pair
//!   `q`, row `r` of an A strip holds `(a[2q][r], a[2q+1][r])`
//!   adjacently and column `c` of a B strip holds `(b[2q][c],
//!   b[2q+1][c])` — the exact operand shape of the SSE2 `pmaddwd`
//!   multiply-accumulate the micro-kernel
//!   ([`eml_simd::madd_tile_i16`]) is built on. Odd depths are padded
//!   with one zero k-step;
//! - the K-slice depth is [`KC8`]` = 1024` instead of the `f32`
//!   kernel's 256 (an i16 panel is half the bytes of an f32 one at the
//!   same footprint). Every layer shape in this crate then fits a
//!   *single* K-slice, which keeps the kernel on its fast path:
//!   accumulate an MR×NR tile of `i32` in registers and requantise in
//!   the write-back, with no spill buffer;
//! - deeper products (`k > KC8`) accumulate per MC8-row block into a
//!   thread-local `i32` scratch and requantise once after the last
//!   slice, so multi-slice results are identical to a single wide
//!   slice.
//!
//! ```text
//!        N                 per MR×NR tile, per k-pair:   ┌── PackedB8 panel
//!   ┌─────────┐              acc_i32 += a0·b0 + a1·b1   │   KC8 × N i16 pairs,
//!   │ B (i16  │ K            (pmaddwd: 8 MACs/insn)     │   NR-wide strips
//!   │  pairs) │              f32 out = acc·scale + b    ├── PackedA8 block
//!   └─────────┘                                         │   MR-tall strips
//! M ┌──┐┌─────────┐                                     └── both zero-padded
//!   │A8││ C (f32) │
//!   └──┘└─────────┘
//! ```
//!
//! # Requantisation
//!
//! The accumulator is `i32` throughout — exact integer arithmetic, no
//! rounding until the epilogue. [`QEpilogue`] folds the whole
//! dequantise-bias-activate sequence into the write-back:
//! `out = relu(acc · scale + bias)` in `f32`, where `scale` is the
//! product of the two operands' per-tensor scales. For quantised
//! chaining ([`gemm_i8_q`]), [`QEpilogueI8`] performs the same
//! sequence with a saturating round straight onto the **next** layer's
//! int8 grid (`scale = in_scale·w_scale/out_scale`, bias pre-divided
//! by the output scale, optional ReLU a free `max(0)` before the
//! round), so chained layers never materialise an `f32` activation;
//! [`requantize_i8`] is the scalar form of that write-back.
//!
//! # Overflow guard
//!
//! Each i8-grid product is at most `127² = 16129`, so a same-sign
//! reduction over `k` terms stays inside `i32` iff
//! `k ≤ i32::MAX / 16129 =`[`MAX_K_I8`]. [`gemm_i8`] asserts this —
//! the layers are orders of magnitude below it, but the guard turns a
//! silent wrap into a loud panic if someone feeds the kernel a
//! pathological shape.

use std::cell::RefCell;

use crate::gemm::{Bias, MatRef, MR, NR};
use crate::quant::quantize_i8w;

// The register tile this module packs for is the one the shared
// micro-kernel crate implements.
const _: () = assert!(MR == eml_simd::MR8 && NR == eml_simd::NR8);

/// Depth (K) packed per K-slice of the int8 kernel (see module docs).
pub const KC8: usize = 1024;
/// Rows of A per macro block (same as the `f32` kernel's `MC`).
pub const MC8: usize = 64;
/// Largest `k` the kernel accepts: beyond this a same-sign i8-grid
/// reduction could wrap the `i32` accumulator (`i32::MAX / 127²`).
pub const MAX_K_I8: usize = (i32::MAX / (127 * 127)) as usize;

/// Depth padded to whole k-pairs (the layout stores two k-steps
/// adjacently, so odd depths carry one zero k-step).
#[inline]
fn k_pad(k: usize) -> usize {
    k + (k & 1)
}

/// Buffer length (in `i16` elements) of a packed `m × k` int8 A
/// operand (see [`PackedA8`]).
pub fn packed_a8_len(m: usize, k: usize) -> usize {
    m.div_ceil(MR) * MR * k_pad(k)
}

/// Buffer length (in `i16` elements) of a packed `k × n` int8 B
/// operand (see [`PackedB8`]).
pub fn packed_b8_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * NR * k_pad(k)
}

/// Quantises and packs `A[i0..i0+mc][pc..pc+kc]` into MR-tall
/// pair-interleaved row strips (layout of [`PackedA8`], one K-slice's
/// worth): element `(p, r)` lands at `(p/2)·2MR + r·2 + p%2` of its
/// strip. Pads the odd tail k-step and the rows past `mc` with zeros.
fn pack_a8_w(a: MatRef<'_>, i0: usize, mc: usize, pc: usize, kc: usize, inv: f32, pa: &mut [i16]) {
    let strips = mc.div_ceil(MR);
    let kcp = k_pad(kc);
    for strip in 0..strips {
        let base = strip * kcp * MR;
        for p in 0..kcp {
            let dst = base + (p / 2) * 2 * MR + (p & 1);
            for r in 0..MR {
                let i = strip * MR + r;
                pa[dst + r * 2] = if i < mc && p < kc {
                    quantize_i8w(a.at(i0 + i, pc + p), inv)
                } else {
                    0
                };
            }
        }
    }
}

/// Quantises and packs `B[pc..pc+kc][0..n]` into NR-wide
/// pair-interleaved column strips (layout of [`PackedB8`], one
/// K-slice's worth): element `(p, c)` lands at `(p/2)·2NR + c·2 + p%2`
/// of its strip. Pads the odd tail k-step and the columns past `n`
/// with zeros.
fn pack_b8_w(b: MatRef<'_>, pc: usize, kc: usize, n: usize, inv: f32, pb: &mut [i16]) {
    let strips = n.div_ceil(NR);
    let kcp = k_pad(kc);
    for strip in 0..strips {
        let j0 = strip * NR;
        let width = NR.min(n - j0);
        let base = strip * kcp * NR;
        for p in 0..kcp {
            let dst = &mut pb[base + (p / 2) * 2 * NR + (p & 1)..][..2 * NR - 1];
            if p < kc {
                for (j, d) in dst.iter_mut().step_by(2).enumerate() {
                    *d = if j < width {
                        quantize_i8w(b.at(pc + p, j0 + j), inv)
                    } else {
                        0
                    };
                }
            } else {
                for d in dst.iter_mut().step_by(2) {
                    *d = 0;
                }
            }
        }
    }
}

/// Quantises an `m × k` logical `f32` matrix straight into the packed
/// int8 A layout inside `buf` (length ≥ [`packed_a8_len`]). Wrap the
/// result in [`PackedA8Ref::new`]; [`PackedA8::pack_quantized`] is the
/// owning convenience form.
pub fn pack_a8_quantized(a: MatRef<'_>, m: usize, k: usize, inv_scale: f32, buf: &mut [i16]) {
    debug_assert!(buf.len() >= packed_a8_len(m, k));
    let m_pad = m.div_ceil(MR) * MR;
    let mut pc = 0;
    while pc < k {
        let kc = KC8.min(k - pc);
        pack_a8_w(a, 0, m, pc, kc, inv_scale, &mut buf[m_pad * pc..]);
        pc += kc;
    }
}

/// Packs an `m × k` row-major matrix of **already-quantised**
/// int8-grid values (`i16` storage) straight into the packed int8 A
/// layout inside `buf` (length ≥ [`packed_a8_len`]) — the chained-layer
/// twin of [`pack_a8_quantized`]: the values were requantised by the
/// previous layer's [`QEpilogueI8`] write-back, so this is pure integer
/// copies with no quantisation pass and no `f32` intermediate. Wrap the
/// result in [`PackedA8Ref::new`].
pub fn pack_a8_i16(src: &[i16], m: usize, k: usize, buf: &mut [i16]) {
    debug_assert!(src.len() >= m * k);
    debug_assert!(buf.len() >= packed_a8_len(m, k));
    let m_pad = m.div_ceil(MR) * MR;
    let strips = m.div_ceil(MR);
    let mut pc = 0;
    while pc < k {
        let kc = KC8.min(k - pc);
        let kcp = k_pad(kc);
        let pa = &mut buf[m_pad * pc..];
        for strip in 0..strips {
            let base = strip * kcp * MR;
            for p in 0..kcp {
                let dst = base + (p / 2) * 2 * MR + (p & 1);
                for r in 0..MR {
                    let i = strip * MR + r;
                    pa[dst + r * 2] = if i < m && p < kc {
                        src[i * k + pc + p]
                    } else {
                        0
                    };
                }
            }
        }
        pc += kc;
    }
}

/// An owned, fully packed, quantised A (left-hand) operand: int8-grid
/// values in the pair-interleaved `i16` layout (see module docs), with
/// [`KC8`]-deep slices.
#[derive(Clone)]
pub struct PackedA8 {
    buf: Vec<i16>,
    m: usize,
    k: usize,
}

impl std::fmt::Debug for PackedA8 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PackedA8({}x{})", self.m, self.k)
    }
}

impl PackedA8 {
    /// Quantises the `m × k` logical `f32` matrix `a` with
    /// `value = round(x · inv_scale)` (saturating to `[-127, 127]`)
    /// and packs it.
    pub fn pack_quantized(a: MatRef<'_>, m: usize, k: usize, inv_scale: f32) -> Self {
        let mut buf = vec![0i16; packed_a8_len(m, k)];
        if k > 0 {
            pack_a8_quantized(a, m, k, inv_scale, &mut buf);
        }
        Self { buf, m, k }
    }

    /// A borrowed view for [`gemm_i8`].
    pub fn as_ref(&self) -> PackedA8Ref<'_> {
        PackedA8Ref {
            data: &self.buf,
            m: self.m,
            k: self.k,
        }
    }
}

/// A borrowed packed int8 A operand (see [`PackedA8`]).
#[derive(Debug, Clone, Copy)]
pub struct PackedA8Ref<'a> {
    data: &'a [i16],
    m: usize,
    k: usize,
}

impl<'a> PackedA8Ref<'a> {
    /// Wraps an externally built packed buffer (layout of [`PackedA8`]).
    pub fn new(data: &'a [i16], m: usize, k: usize) -> Self {
        debug_assert!(data.len() >= packed_a8_len(m, k));
        Self { data, m, k }
    }

    /// The strips of rows `i0..` (with `i0 % MR == 0`) of K-slice
    /// `pc..pc+kc`.
    #[inline]
    fn block(&self, i0: usize, pc: usize, kc: usize) -> &'a [i16] {
        debug_assert_eq!(i0 % MR, 0);
        let m_pad = self.m.div_ceil(MR) * MR;
        &self.data[m_pad * pc + (i0 / MR) * k_pad(kc) * MR..]
    }
}

/// An owned, fully packed, quantised B (right-hand) operand: int8-grid
/// values in the pair-interleaved `i16` layout (see module docs), with
/// [`KC8`]-deep slices.
#[derive(Clone)]
pub struct PackedB8 {
    buf: Vec<i16>,
    k: usize,
    n: usize,
}

impl std::fmt::Debug for PackedB8 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PackedB8({}x{})", self.k, self.n)
    }
}

impl PackedB8 {
    /// Quantises the `k × n` logical `f32` matrix `b` with
    /// `value = round(x · inv_scale)` (saturating to `[-127, 127]`)
    /// and packs it.
    pub fn pack_quantized(b: MatRef<'_>, k: usize, n: usize, inv_scale: f32) -> Self {
        let n_pad = n.div_ceil(NR) * NR;
        let mut buf = vec![0i16; packed_b8_len(k, n)];
        let mut pc = 0;
        while pc < k {
            let kc = KC8.min(k - pc);
            pack_b8_w(b, pc, kc, n, inv_scale, &mut buf[n_pad * pc..]);
            pc += kc;
        }
        Self { buf, k, n }
    }

    /// A borrowed view for [`gemm_i8`].
    pub fn as_ref(&self) -> PackedB8Ref<'_> {
        PackedB8Ref {
            data: &self.buf,
            k: self.k,
            n: self.n,
        }
    }
}

/// A borrowed packed int8 B operand (see [`PackedB8`]). Also
/// constructible over an external buffer, e.g. one filled by
/// [`crate::im2col::im2col_packed_i8`].
#[derive(Debug, Clone, Copy)]
pub struct PackedB8Ref<'a> {
    data: &'a [i16],
    k: usize,
    n: usize,
}

impl<'a> PackedB8Ref<'a> {
    /// Wraps an externally built packed buffer (layout of [`PackedB8`]).
    pub fn new(data: &'a [i16], k: usize, n: usize) -> Self {
        debug_assert!(data.len() >= packed_b8_len(k, n));
        Self { data, k, n }
    }

    /// The panel of K-slice `pc..pc+kc`.
    #[inline]
    fn panel(&self, pc: usize, kc: usize) -> &'a [i16] {
        let n_pad = self.n.div_ceil(NR) * NR;
        &self.data[n_pad * pc..][..n_pad * k_pad(kc)]
    }
}

/// The requantisation epilogue fused into [`gemm_i8`]'s write-back:
/// `out = relu(acc · scale + bias)`, applied once per output element
/// after the full `k` reduction. `scale` is the product of the two
/// operands' per-tensor quantisation scales (dequantising the integer
/// accumulator back to real units); bias and ReLU are optional and
/// applied in that order, exactly like the `f32` kernel's
/// [`crate::gemm::Epilogue`].
#[derive(Debug, Clone, Copy)]
pub struct QEpilogue<'a> {
    scale: f32,
    bias: Option<Bias<'a>>,
    relu: bool,
}

impl<'a> QEpilogue<'a> {
    /// Dequantise only: `out = acc · scale`.
    pub fn scaled(scale: f32) -> Self {
        Self {
            scale,
            bias: None,
            relu: false,
        }
    }

    /// Fuses a per-row (`f32`) bias add after the dequantise.
    pub fn with_bias_row(mut self, bias: &'a [f32]) -> Self {
        self.bias = Some(Bias::Row(bias));
        self
    }

    /// Fuses a per-column (`f32`) bias add after the dequantise.
    pub fn with_bias_col(mut self, bias: &'a [f32]) -> Self {
        self.bias = Some(Bias::Col(bias));
        self
    }

    /// Additionally clamps the final value at zero (ReLU), after the
    /// bias add.
    pub fn with_relu(mut self) -> Self {
        self.relu = true;
        self
    }

    #[inline]
    fn bias_at(&self, row: usize, col: usize) -> f32 {
        match self.bias {
            Some(Bias::Row(b)) => b[row],
            Some(Bias::Col(b)) => b[col],
            None => 0.0,
        }
    }
}

/// Write-back of the int8 GEMM kernel: turns one segment of `i32`
/// accumulators into output elements, after the full `k` reduction.
/// Two implementations exist — [`QEpilogue`] dequantises to `f32`
/// (layer output leaves the quantised domain) and [`QEpilogueI8`]
/// requantises straight onto the int8 grid (chained
/// quantised-to-quantised layers, `eml_nn::quant` chaining docs).
pub(crate) trait QWriteback: Copy + Send + Sync {
    /// Output element type the kernel writes.
    type Out: Copy + Send + Default;

    /// Writes one full register-tile row; the fixed width lets the
    /// compiler vectorise the convert-scale-store sequence.
    fn apply_tile_row(&self, dst: &mut [Self::Out; NR], acc: &[i32; NR], row: usize, col0: usize);

    /// Writes one row segment. `row` is the global row index, `col0`
    /// the global column of `dst[0]`/`acc[0]`.
    fn apply(&self, dst: &mut [Self::Out], acc: &[i32], row: usize, col0: usize);
}

impl QWriteback for QEpilogue<'_> {
    type Out = f32;

    #[inline]
    fn apply_tile_row(&self, dst: &mut [f32; NR], acc: &[i32; NR], row: usize, col0: usize) {
        match self.bias {
            Some(Bias::Row(b)) => {
                let bv = b[row];
                for (d, &a) in dst.iter_mut().zip(acc) {
                    *d = a as f32 * self.scale + bv;
                }
            }
            Some(Bias::Col(b)) => {
                let b: &[f32; NR] = b[col0..col0 + NR].try_into().expect("NR columns");
                for ((d, &a), &bv) in dst.iter_mut().zip(acc).zip(b) {
                    *d = a as f32 * self.scale + bv;
                }
            }
            None => {
                for (d, &a) in dst.iter_mut().zip(acc) {
                    *d = a as f32 * self.scale;
                }
            }
        }
        if self.relu {
            for d in dst.iter_mut() {
                *d = d.max(0.0);
            }
        }
    }

    #[inline]
    fn apply(&self, dst: &mut [f32], acc: &[i32], row: usize, col0: usize) {
        for (j, (d, &a)) in dst.iter_mut().zip(acc).enumerate() {
            let mut v = a as f32 * self.scale + self.bias_at(row, col0 + j);
            if self.relu {
                v = v.max(0.0);
            }
            *d = v;
        }
    }
}

/// The saturating-int8 requantisation epilogue of a chained
/// quantised-to-quantised layer, fused into [`gemm_i8_q`]'s
/// write-back: `q = round(acc · scale + bias)` clamped to
/// `[-127, 127]` (stored as `i16`, the packed panels' operand form),
/// with the optional ReLU a free `max(0)` before the round.
///
/// `scale` is `in_scale · weight_scale / out_scale` and `bias` values
/// must arrive **pre-divided by the output scale** — the epilogue
/// operates entirely on the output grid (see the chained-scale algebra
/// in [`crate::quant`]'s module docs).
#[derive(Debug, Clone, Copy)]
pub struct QEpilogueI8<'a> {
    scale: f32,
    bias: Option<Bias<'a>>,
    relu: bool,
}

impl<'a> QEpilogueI8<'a> {
    /// Requantise only: `q = round_sat(acc · scale)`.
    pub fn scaled(scale: f32) -> Self {
        Self {
            scale,
            bias: None,
            relu: false,
        }
    }

    /// Fuses a per-row bias add (values pre-divided by the output
    /// scale) before the round.
    pub fn with_bias_row(mut self, bias: &'a [f32]) -> Self {
        self.bias = Some(Bias::Row(bias));
        self
    }

    /// Fuses a per-column bias add (values pre-divided by the output
    /// scale) before the round.
    pub fn with_bias_col(mut self, bias: &'a [f32]) -> Self {
        self.bias = Some(Bias::Col(bias));
        self
    }

    /// Additionally clamps at zero (ReLU) after the bias add, before
    /// the round — exactly [`requantize_i8`]'s order.
    pub fn with_relu(mut self) -> Self {
        self.relu = true;
        self
    }

    #[inline]
    fn bias_at(&self, row: usize, col: usize) -> f32 {
        match self.bias {
            Some(Bias::Row(b)) => b[row],
            Some(Bias::Col(b)) => b[col],
            None => 0.0,
        }
    }

    #[inline]
    fn requant(&self, acc: i32, bias: f32) -> i16 {
        let mut v = acc as f32 * self.scale + bias;
        if self.relu {
            v = v.max(0.0);
        }
        crate::quant::round_clamp_i8w(v)
    }
}

impl QWriteback for QEpilogueI8<'_> {
    type Out = i16;

    #[inline]
    fn apply_tile_row(&self, dst: &mut [i16; NR], acc: &[i32; NR], row: usize, col0: usize) {
        match self.bias {
            Some(Bias::Row(b)) => {
                let bv = b[row];
                for (d, &a) in dst.iter_mut().zip(acc) {
                    *d = self.requant(a, bv);
                }
            }
            Some(Bias::Col(b)) => {
                let b: &[f32; NR] = b[col0..col0 + NR].try_into().expect("NR columns");
                for ((d, &a), &bv) in dst.iter_mut().zip(acc).zip(b) {
                    *d = self.requant(a, bv);
                }
            }
            None => {
                for (d, &a) in dst.iter_mut().zip(acc) {
                    *d = self.requant(a, 0.0);
                }
            }
        }
    }

    #[inline]
    fn apply(&self, dst: &mut [i16], acc: &[i32], row: usize, col0: usize) {
        for (j, (d, &a)) in dst.iter_mut().zip(acc).enumerate() {
            *d = self.requant(a, self.bias_at(row, col0 + j));
        }
    }
}

/// Saturating int8 requantisation of one `i32` accumulator:
/// `round(acc · scale + bias)` (ReLU before the round when `relu`),
/// clamped to the symmetric int8 grid `[-127, 127]`. This is the
/// scalar form of the output half of a quantised-to-quantised layer
/// chain ([`QEpilogueI8`] is the fused kernel form); `scale` there is
/// `in_scale · weight_scale / out_scale`.
///
/// Rounds ties to even — the same branchless magic-bias core as the
/// input quantisers and the fused epilogue, so no call site can
/// diverge in rounding policy.
pub fn requantize_i8(acc: i32, scale: f32, bias: f32, relu: bool) -> i8 {
    let mut v = acc as f32 * scale + bias;
    if relu {
        v = v.max(0.0);
    }
    crate::quant::round_clamp_i8(v)
}

thread_local! {
    /// Per-thread i32 accumulator block for multi-slice products
    /// (`k > KC8`); grown once, then reused.
    static ACC32: RefCell<Vec<i32>> = const { RefCell::new(Vec::new()) };
}

/// `C = epilogue(A·B)` over quantised operands: logical shapes
/// `A: m×k` (int8 grid, [`PackedA8Ref`]), `B: k×n` (int8 grid,
/// [`PackedB8Ref`]), `C: m×n` (`f32`, row-major with leading dimension
/// `ldc ≥ n`, overwritten). Accumulation is exact `i32`; the
/// [`QEpilogue`] dequantises in the write-back.
///
/// Both operands arrive pre-packed by construction — the layers cache
/// quantised weight panels and lower activations directly into packed
/// layout, so unlike the `f32` kernel there is no internal pack path.
/// When `parallel` is set and the product is large enough the `M`
/// range splits across worker bands exactly like
/// [`crate::gemm::gemm_with`].
///
/// # Panics
///
/// Panics if `k > `[`MAX_K_I8`] (the `i32` overflow guard);
/// debug-asserts operand dimensions.
#[allow(clippy::too_many_arguments)] // GEMM is inherently (m, n, k, A, B, C)-shaped
pub fn gemm_i8(
    m: usize,
    n: usize,
    k: usize,
    a: PackedA8Ref<'_>,
    b: PackedB8Ref<'_>,
    c: &mut [f32],
    ldc: usize,
    parallel: bool,
    ep: QEpilogue<'_>,
) {
    gemm_i8_with(m, n, k, a, b, c, ldc, parallel, ep);
}

/// [`gemm_i8`] with a **saturating int8 output**: `C` holds int8-grid
/// values in `i16` storage (the packed panels' operand form), written
/// through the requantising [`QEpilogueI8`]. This is the kernel of a
/// chained quantised-to-quantised layer: the output can be lowered
/// straight into the next layer's packed int8 operand without ever
/// materialising an `f32` intermediate.
///
/// # Panics
///
/// Same conditions as [`gemm_i8`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_i8_q(
    m: usize,
    n: usize,
    k: usize,
    a: PackedA8Ref<'_>,
    b: PackedB8Ref<'_>,
    c: &mut [i16],
    ldc: usize,
    parallel: bool,
    ep: QEpilogueI8<'_>,
) {
    gemm_i8_with(m, n, k, a, b, c, ldc, parallel, ep);
}

/// Shared driver behind [`gemm_i8`] and [`gemm_i8_q`], generic over
/// the write-back (`f32` dequantise vs int8 requantise).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_i8_with<E: QWriteback>(
    m: usize,
    n: usize,
    k: usize,
    a: PackedA8Ref<'_>,
    b: PackedB8Ref<'_>,
    c: &mut [E::Out],
    ldc: usize,
    parallel: bool,
    ep: E,
) {
    assert!(
        k <= MAX_K_I8,
        "gemm_i8: k = {k} exceeds the i32 overflow bound {MAX_K_I8}"
    );
    debug_assert!(ldc >= n);
    debug_assert!(a.m == m && a.k == k, "packed A8 is {}x{}", a.m, a.k);
    debug_assert!(b.k == k && b.n == n, "packed B8 is {}x{}", b.k, b.n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        let zeros = [0i32; NR];
        for (i, row) in c.chunks_mut(ldc).take(m).enumerate() {
            let mut j0 = 0;
            while j0 < n {
                let width = NR.min(n - j0);
                ep.apply(&mut row[j0..j0 + width], &zeros[..width], i, j0);
                j0 += width;
            }
        }
        return;
    }
    let workers = crate::workers::worker_count();
    if parallel && workers > 1 && m * n * k >= crate::gemm::PAR_MIN_WORK_I8 && m >= 2 * MR {
        // Band height: even split over workers, rounded up to MR. With
        // both operands pre-packed the bands are fully independent —
        // each runs the whole serial algorithm on its row range.
        let band = m.div_ceil(workers).div_ceil(MR) * MR;
        rayon::scope(|s| {
            let mut rest = &mut c[..];
            let mut i0 = 0;
            while i0 < m {
                let rows = band.min(m - i0);
                let split = (rows * ldc).min(rest.len());
                let (band_c, tail) = rest.split_at_mut(split);
                s.spawn(move |_| gemm_i8_serial(i0, rows, n, k, a, b, band_c, ldc, ep));
                rest = tail;
                i0 += rows;
            }
        });
    } else {
        gemm_i8_serial(0, m, n, k, a, b, c, ldc, ep);
    }
}

/// The single-threaded int8 blocked GEMM over rows `i0..i0+m` of the
/// logical product; `c` starts at row `i0`.
#[allow(clippy::too_many_arguments)]
fn gemm_i8_serial<E: QWriteback>(
    i0: usize,
    m: usize,
    n: usize,
    k: usize,
    a: PackedA8Ref<'_>,
    b: PackedB8Ref<'_>,
    c: &mut [E::Out],
    ldc: usize,
    ep: E,
) {
    if k <= KC8 {
        // Single-slice fast path (every layer shape in this crate):
        // requantise straight out of the register tile.
        let panel = b.panel(0, k);
        let mut ic = 0;
        while ic < m {
            let mc = MC8.min(m - ic);
            macro_tile_i8(
                a.block(i0 + ic, 0, k),
                panel,
                mc,
                n,
                k,
                &mut c[ic * ldc..],
                ldc,
                i0 + ic,
                ep,
            );
            ic += mc;
        }
        return;
    }
    // Multi-slice: accumulate each MC8-row block across all K-slices in
    // an i32 scratch, requantise once after the last slice.
    ACC32.with(|cell| {
        let mut acc = cell.take();
        acc.resize((MC8 * n).max(acc.len()), 0);
        let mut ic = 0;
        while ic < m {
            let mc = MC8.min(m - ic);
            acc[..mc * n].fill(0);
            let mut pc = 0;
            while pc < k {
                let kc = KC8.min(k - pc);
                macro_tile_i8_acc(
                    a.block(i0 + ic, pc, kc),
                    b.panel(pc, kc),
                    mc,
                    n,
                    kc,
                    &mut acc,
                );
                pc += kc;
            }
            for r in 0..mc {
                let row = &mut c[(ic + r) * ldc..][..n];
                ep.apply(row, &acc[r * n..][..n], i0 + ic + r, 0);
            }
            ic += mc;
        }
        cell.replace(acc);
    });
}

/// Runs the int8 micro-kernel ([`eml_simd::madd_tile_i16`]) over every
/// MR×NR tile of an `mc × n` block, requantising each tile row
/// straight into `c` (single-slice path). `row0` is the global row
/// index of `c[0]`.
#[allow(clippy::too_many_arguments)]
fn macro_tile_i8<E: QWriteback>(
    pa: &[i16],
    pb: &[i16],
    mc: usize,
    n: usize,
    kc: usize,
    c: &mut [E::Out],
    ldc: usize,
    row0: usize,
    ep: E,
) {
    let row_strips = mc.div_ceil(MR);
    let col_strips = n.div_ceil(NR);
    let kcp = k_pad(kc);
    for rs in 0..row_strips {
        let pa_strip = &pa[rs * kcp * MR..][..kcp * MR];
        let rows = MR.min(mc - rs * MR);
        for cs in 0..col_strips {
            let pb_strip = &pb[cs * kcp * NR..][..kcp * NR];
            let cols = NR.min(n - cs * NR);
            let mut acc = [[0i32; NR]; MR];
            eml_simd::madd_tile_i16(pa_strip, pb_strip, kcp / 2, &mut acc);
            if rows == MR && cols == NR {
                // Full-tile fast path: fixed-size rows vectorise the
                // convert-scale-store.
                for (r, vals) in acc.iter().enumerate() {
                    let dst: &mut [E::Out; NR] = (&mut c[(rs * MR + r) * ldc + cs * NR..][..NR])
                        .try_into()
                        .expect("NR-wide row");
                    ep.apply_tile_row(dst, vals, row0 + rs * MR + r, cs * NR);
                }
                continue;
            }
            for (r, vals) in acc.iter().enumerate().take(rows) {
                let row = &mut c[(rs * MR + r) * ldc + cs * NR..][..cols];
                ep.apply(row, &vals[..cols], row0 + rs * MR + r, cs * NR);
            }
        }
    }
}

/// [`macro_tile_i8`], but accumulating raw `i32` tiles into `acc`
/// (`mc × n`, row-major) for the multi-slice path.
fn macro_tile_i8_acc(pa: &[i16], pb: &[i16], mc: usize, n: usize, kc: usize, acc: &mut [i32]) {
    let row_strips = mc.div_ceil(MR);
    let col_strips = n.div_ceil(NR);
    let kcp = k_pad(kc);
    for rs in 0..row_strips {
        let pa_strip = &pa[rs * kcp * MR..][..kcp * MR];
        let rows = MR.min(mc - rs * MR);
        for cs in 0..col_strips {
            let pb_strip = &pb[cs * kcp * NR..][..kcp * NR];
            let cols = NR.min(n - cs * NR);
            let mut tile = [[0i32; NR]; MR];
            eml_simd::madd_tile_i16(pa_strip, pb_strip, kcp / 2, &mut tile);
            for (r, vals) in tile.iter().enumerate().take(rows) {
                let row = &mut acc[(rs * MR + r) * n + cs * NR..][..cols];
                for (d, &v) in row.iter_mut().zip(vals) {
                    *d += v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::quantize_i8;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    /// Scalar oracle: quantise both operands exactly like the pack
    /// step, multiply in i64, requantise per element.
    #[allow(clippy::too_many_arguments)]
    fn naive_i8(
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        inv_a: f32,
        inv_b: f32,
        scale: f32,
        bias_row: Option<&[f32]>,
        bias_col: Option<&[f32]>,
        relu: bool,
    ) -> Vec<f32> {
        let qa: Vec<i32> = a.iter().map(|&x| quantize_i8(x, inv_a) as i32).collect();
        let qb: Vec<i32> = b.iter().map(|&x| quantize_i8(x, inv_b) as i32).collect();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for p in 0..k {
                    acc += i64::from(qa[i * k + p]) * i64::from(qb[p * n + j]);
                }
                let mut v = acc as f32 * scale
                    + bias_row.map_or(0.0, |b| b[i])
                    + bias_col.map_or(0.0, |b| b[j]);
                if relu {
                    v = v.max(0.0);
                }
                out[i * n + j] = v;
            }
        }
        out
    }

    fn check_case(m: usize, n: usize, k: usize, bias_kind: usize, relu: bool) {
        let a = random_vec(m * k, 100 + m as u64 * 7 + k as u64);
        let b = random_vec(k * n, 200 + n as u64 * 13);
        let bias = random_vec(m.max(n), 300);
        let (inv_a, inv_b) = (127.0 / 0.9, 127.0 / 0.8);
        let scale = (0.9 / 127.0) * (0.8 / 127.0);
        let pa = PackedA8::pack_quantized(MatRef::new(&a, k), m, k, inv_a);
        let pb = PackedB8::pack_quantized(MatRef::new(&b, n), k, n, inv_b);
        let mut ep = QEpilogue::scaled(scale);
        let (bias_row, bias_col) = match bias_kind {
            1 => {
                ep = ep.with_bias_row(&bias[..m]);
                (Some(&bias[..m]), None)
            }
            2 => {
                ep = ep.with_bias_col(&bias[..n]);
                (None, Some(&bias[..n]))
            }
            _ => (None, None),
        };
        if relu {
            ep = ep.with_relu();
        }
        let expect = naive_i8(
            m, n, k, &a, &b, inv_a, inv_b, scale, bias_row, bias_col, relu,
        );
        let mut c = vec![f32::NAN; m * n];
        gemm_i8(m, n, k, pa.as_ref(), pb.as_ref(), &mut c, n, false, ep);
        for (i, (&got, &want)) in c.iter().zip(&expect).enumerate() {
            // Integer accumulation is exact; the only float work is the
            // final scale+bias, identical in both — bit-equal expected.
            assert!(
                got.to_bits() == want.to_bits(),
                "({m}x{n}x{k} bias{bias_kind} relu{relu}) c[{i}]: {got} vs {want}"
            );
        }
    }

    #[test]
    fn matches_naive_across_shapes_and_epilogues() {
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 16, 8),
            (5, 17, 9),
            (32, 64, 27),
            (13, 40, 144),
            (65, 33, 301),
        ] {
            for bias_kind in 0..3 {
                for relu in [false, true] {
                    check_case(m, n, k, bias_kind, relu);
                }
            }
        }
    }

    #[test]
    fn multi_slice_matches_single_wide_slice_semantics() {
        // k > KC8 exercises the i32-scratch accumulation path; the
        // oracle reduces in one pass, so agreement proves the slices
        // compose exactly. Odd k additionally pads the tail slice.
        let (m, n, k) = (9usize, 21usize, KC8 + 37);
        check_case(m, n, k, 1, true);
        check_case(m, n, k, 0, false);
        check_case(m, n, 2 * KC8 + 2, 2, false);
    }

    #[test]
    fn parallel_band_split_matches_serial() {
        let (m, n, k) = (96usize, 64usize, 400usize);
        let a = random_vec(m * k, 6);
        let b = random_vec(k * n, 7);
        let bias = random_vec(m, 8);
        let inv = 127.0;
        let scale = 1.0 / (127.0 * 127.0);
        let pa = PackedA8::pack_quantized(MatRef::new(&a, k), m, k, inv);
        let pb = PackedB8::pack_quantized(MatRef::new(&b, n), k, n, inv);
        let ep = QEpilogue::scaled(scale).with_bias_row(&bias).with_relu();
        let mut serial = vec![0.0f32; m * n];
        gemm_i8(m, n, k, pa.as_ref(), pb.as_ref(), &mut serial, n, false, ep);
        for workers in [2usize, 4] {
            crate::workers::FORCE_WORKERS.with(|f| f.set(Some(workers)));
            let mut par = vec![0.0f32; m * n];
            gemm_i8(m, n, k, pa.as_ref(), pb.as_ref(), &mut par, n, true, ep);
            crate::workers::FORCE_WORKERS.with(|f| f.set(None));
            assert!(
                serial
                    .iter()
                    .zip(&par)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "workers={workers}: banded int8 product differs from serial"
            );
        }
    }

    #[test]
    fn k_zero_writes_bias_only() {
        let bias = [1.5f32, -2.0];
        let mut c = vec![9.0f32; 6];
        let ep = QEpilogue::scaled(0.25).with_bias_row(&bias);
        gemm_i8(
            2,
            3,
            0,
            PackedA8Ref::new(&[], 2, 0),
            PackedB8Ref::new(&[], 0, 3),
            &mut c,
            3,
            false,
            ep,
        );
        assert_eq!(c, &[1.5, 1.5, 1.5, -2.0, -2.0, -2.0]);
        // With ReLU the negative bias clamps to zero.
        let ep = QEpilogue::scaled(0.25).with_bias_row(&bias).with_relu();
        gemm_i8(
            2,
            3,
            0,
            PackedA8Ref::new(&[], 2, 0),
            PackedB8Ref::new(&[], 0, 3),
            &mut c,
            3,
            false,
            ep,
        );
        assert_eq!(c, &[1.5, 1.5, 1.5, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn respects_leading_dimension_on_c() {
        let (m, n, k, ldc) = (3usize, 4usize, 5usize, 7usize);
        let a = random_vec(m * k, 4);
        let b = random_vec(k * n, 5);
        let pa = PackedA8::pack_quantized(MatRef::new(&a, k), m, k, 127.0);
        let pb = PackedB8::pack_quantized(MatRef::new(&b, n), k, n, 127.0);
        let mut c = vec![9.0f32; m * ldc];
        gemm_i8(
            m,
            n,
            k,
            pa.as_ref(),
            pb.as_ref(),
            &mut c,
            ldc,
            false,
            QEpilogue::scaled(1.0),
        );
        for row in c.chunks(ldc) {
            for &v in &row[n..] {
                assert_eq!(v, 9.0, "columns beyond n must not be written");
            }
        }
    }

    #[test]
    #[should_panic(expected = "i32 overflow bound")]
    fn overflow_guard_rejects_pathological_k() {
        let k = MAX_K_I8 + 1;
        let pa_buf = vec![0i16; packed_a8_len(4, k)];
        let pb_buf = vec![0i16; packed_b8_len(k, 1)];
        let mut c = vec![0.0f32; 4];
        gemm_i8(
            4,
            1,
            k,
            PackedA8Ref::new(&pa_buf, 4, k),
            PackedB8Ref::new(&pb_buf, k, 1),
            &mut c,
            1,
            false,
            QEpilogue::scaled(1.0),
        );
    }

    #[test]
    fn quantized_packing_saturates_and_rounds() {
        // Values past the grid clamp to ±127 rather than wrapping, and
        // non-finite values land on the grid (never escape it).
        let a = [
            2.0f32,
            -2.0,
            0.004,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
        ];
        let pa = PackedA8::pack_quantized(MatRef::new(&a, 6), 1, 6, 127.0);
        let strip = pa.as_ref().block(0, 0, 6);
        // Pair-interleaved: element p of row 0 is at (p/2)·2MR + p%2.
        let lane0: Vec<i16> = (0..6).map(|p| strip[(p / 2) * 2 * MR + (p % 2)]).collect();
        assert_eq!(lane0, vec![127, -127, 1, -127, 127, -127]);
    }

    #[test]
    fn requantize_i8_saturation_edges() {
        // i32 extremes saturate to the grid ends instead of wrapping.
        assert_eq!(requantize_i8(i32::MAX, 1.0, 0.0, false), 127);
        assert_eq!(requantize_i8(i32::MIN, 1.0, 0.0, false), -127);
        // ±127 clamp exactly at the boundary, one step inside and out.
        assert_eq!(requantize_i8(127, 1.0, 0.0, false), 127);
        assert_eq!(requantize_i8(128, 1.0, 0.0, false), 127);
        assert_eq!(requantize_i8(-127, 1.0, 0.0, false), -127);
        assert_eq!(requantize_i8(-128, 1.0, 0.0, false), -127);
        // Bias shifts before the clamp; ReLU clips negatives first.
        assert_eq!(requantize_i8(100, 1.0, 100.0, false), 127);
        assert_eq!(requantize_i8(-50, 1.0, 0.0, true), 0);
        // All-zero accumulator stays exactly zero whatever the scale.
        assert_eq!(requantize_i8(0, 12345.0, 0.0, false), 0);
        assert_eq!(requantize_i8(0, 0.0, 0.0, true), 0);
        // Round-to-nearest, ties to even — the same magic-bias core as
        // the input quantisers, so chaining cannot mix rounding rules.
        assert_eq!(requantize_i8(3, 0.5, 0.0, false), 2); // 1.5 ties to even 2
        assert_eq!(requantize_i8(5, 0.5, 0.0, false), 2); // 2.5 ties to even 2
        assert_eq!(requantize_i8(7, 0.5, 0.0, false), 4); // 3.5 ties to even 4
        assert_eq!(requantize_i8(-5, 0.5, 0.0, false), -2);
    }

    /// The fused int8-output epilogue ([`gemm_i8_q`]) must agree with
    /// the scalar [`requantize_i8`] primitive applied to the exact
    /// integer accumulators, across bias orientations, ReLU, edge
    /// tiles and the multi-slice accumulation path.
    #[test]
    fn gemm_i8_q_matches_requantize_primitive() {
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 16, 8),
            (5, 17, 9),
            (13, 40, 144),
            (9, 21, KC8 + 37),
        ] {
            let a = random_vec(m * k, 400 + m as u64);
            let b = random_vec(k * n, 500 + n as u64);
            let bias = random_vec(m.max(n), 600);
            let (inv_a, inv_b) = (127.0 / 0.9, 127.0 / 0.8);
            // Chained-layer multiplier: s_x·s_w / s_out with an
            // arbitrary output scale.
            let scale = (0.9 / 127.0) * (0.8 / 127.0) / 0.01;
            let pa = PackedA8::pack_quantized(MatRef::new(&a, k), m, k, inv_a);
            let pb = PackedB8::pack_quantized(MatRef::new(&b, n), k, n, inv_b);
            // Exact integer accumulators from the quantised operands.
            let qa: Vec<i64> = a.iter().map(|&x| quantize_i8(x, inv_a) as i64).collect();
            let qb: Vec<i64> = b.iter().map(|&x| quantize_i8(x, inv_b) as i64).collect();
            for bias_kind in 0..3usize {
                for relu in [false, true] {
                    let mut ep = QEpilogueI8::scaled(scale);
                    match bias_kind {
                        1 => ep = ep.with_bias_row(&bias[..m]),
                        2 => ep = ep.with_bias_col(&bias[..n]),
                        _ => {}
                    }
                    if relu {
                        ep = ep.with_relu();
                    }
                    let mut c = vec![i16::MIN; m * n];
                    gemm_i8_q(m, n, k, pa.as_ref(), pb.as_ref(), &mut c, n, false, ep);
                    for i in 0..m {
                        for j in 0..n {
                            let acc: i64 = (0..k).map(|p| qa[i * k + p] * qb[p * n + j]).sum();
                            let bv = match bias_kind {
                                1 => bias[i],
                                2 => bias[j],
                                _ => 0.0,
                            };
                            let want = requantize_i8(acc as i32, scale, bv, relu);
                            assert_eq!(
                                c[i * n + j],
                                i16::from(want),
                                "({m}x{n}x{k} bias{bias_kind} relu{relu}) c[{i}][{j}]"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Packing pre-quantised `i16` values must produce the identical
    /// panel bytes as quantise-during-pack of the values they came
    /// from — the chained lowering introduces no re-quantisation.
    #[test]
    fn pack_a8_i16_matches_quantising_pack() {
        for &(m, k) in &[(1usize, 1usize), (3, 7), (4, 16), (7, 33), (5, KC8 + 3)] {
            let a = random_vec(m * k, 70 + k as u64);
            let inv = 127.0 / 0.85;
            let expect = PackedA8::pack_quantized(MatRef::new(&a, k), m, k, inv);
            let mut qa = vec![0i16; m * k];
            crate::quant::quantize_slice_i16(&a, inv, &mut qa);
            let mut buf = vec![i16::MIN; packed_a8_len(m, k)];
            pack_a8_i16(&qa, m, k, &mut buf);
            assert_eq!(buf, expect.buf, "m={m} k={k}");
        }
    }

    #[test]
    fn all_zero_operands_give_exact_zero_or_bias() {
        let (m, n, k) = (4usize, 16usize, 32usize);
        let a = vec![0.0f32; m * k];
        let b = vec![0.0f32; k * n];
        let pa = PackedA8::pack_quantized(MatRef::new(&a, k), m, k, 0.0);
        let pb = PackedB8::pack_quantized(MatRef::new(&b, n), k, n, 0.0);
        let mut c = vec![f32::NAN; m * n];
        gemm_i8(
            m,
            n,
            k,
            pa.as_ref(),
            pb.as_ref(),
            &mut c,
            n,
            false,
            QEpilogue::scaled(0.0),
        );
        assert!(c.iter().all(|&v| v == 0.0));
        let bias = random_vec(m, 9);
        let mut c2 = vec![f32::NAN; m * n];
        gemm_i8(
            m,
            n,
            k,
            pa.as_ref(),
            pb.as_ref(),
            &mut c2,
            n,
            false,
            QEpilogue::scaled(0.0).with_bias_row(&bias),
        );
        for (i, row) in c2.chunks(n).enumerate() {
            assert!(row.iter().all(|&v| v == bias[i]));
        }
    }
}
