//! The reference CNN architecture of the reproduction: a small VGG-style
//! network whose convolution channels are partitioned into `G` groups, per
//! the paper's Fig 3.
//!
//! Layer stack (for `base_width = w`):
//!
//! ```text
//! conv1  dense 3→w, 3×3, pad 1, out channels G-partitioned
//! relu, maxpool 2×2
//! conv2  grouped w→2w, 3×3, pad 1
//! relu, maxpool 2×2
//! conv3  grouped 2w→2w, 3×3, pad 1
//! relu
//! flatten
//! fc     2w·(H/4)·(W/4) → classes, input features G-partitioned
//! ```
//!
//! The cost of a forward pass scales almost exactly with `g/G` (every
//! parameterised layer's MACs are proportional to the active group count),
//! which is why the paper names the configurations 25/50/75/100 %.

use rand::Rng;

use crate::activation::{Flatten, Relu};
use crate::conv::{Conv2d, Conv2dConfig};
use crate::error::{NnError, Result};
use crate::layer::Layer;
use crate::linear::Linear;
use crate::network::Network;
use crate::pool::MaxPool2d;

/// Configuration of the reference group CNN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CnnConfig {
    /// Input shape `(channels, height, width)`.
    pub input: (usize, usize, usize),
    /// Number of output classes.
    pub classes: usize,
    /// Dynamic-DNN group count `G` (the paper uses 4).
    pub groups: usize,
    /// Output channels of the first convolution (the paper's width scale).
    pub base_width: usize,
}

impl Default for CnnConfig {
    fn default() -> Self {
        Self {
            input: (3, 16, 16),
            classes: 10,
            groups: 4,
            base_width: 32,
        }
    }
}

/// Builds the reference CNN.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] when the widths are not divisible by
/// the group count or the spatial size does not survive two 2× poolings.
///
/// # Examples
///
/// ```
/// use eml_nn::arch::{build_group_cnn, CnnConfig};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), eml_nn::NnError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = build_group_cnn(CnnConfig::default(), &mut rng)?;
/// let full = net.cost()?.macs;
/// net.set_active_groups(1)?;
/// let quarter = net.cost()?.macs;
/// assert!((quarter / full - 0.25).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn build_group_cnn(cfg: CnnConfig, rng: &mut impl Rng) -> Result<Network> {
    let (c, h, w) = cfg.input;
    if cfg.base_width == 0 || !cfg.base_width.is_multiple_of(cfg.groups) {
        return Err(NnError::InvalidConfig {
            reason: format!(
                "base_width {} must be a positive multiple of groups {}",
                cfg.base_width, cfg.groups
            ),
        });
    }
    if h % 4 != 0 || w % 4 != 0 || h < 4 || w < 4 {
        return Err(NnError::InvalidConfig {
            reason: format!("input {h}x{w} must be a multiple of 4 for two 2x poolings"),
        });
    }
    if cfg.classes == 0 {
        return Err(NnError::InvalidConfig {
            reason: "classes must be positive".into(),
        });
    }
    let w1 = cfg.base_width;
    let w2 = 2 * cfg.base_width;
    let conv1 = Conv2d::new(
        "conv1",
        Conv2dConfig {
            in_channels: c,
            out_channels: w1,
            kernel: 3,
            stride: 1,
            padding: 1,
            conv_groups: 1,
            prune_groups: cfg.groups,
        },
        rng,
    )?;
    let conv2 = Conv2d::new(
        "conv2",
        Conv2dConfig {
            in_channels: w1,
            out_channels: w2,
            kernel: 3,
            stride: 1,
            padding: 1,
            conv_groups: cfg.groups,
            prune_groups: cfg.groups,
        },
        rng,
    )?;
    let conv3 = Conv2d::new(
        "conv3",
        Conv2dConfig {
            in_channels: w2,
            out_channels: w2,
            kernel: 3,
            stride: 1,
            padding: 1,
            conv_groups: cfg.groups,
            prune_groups: cfg.groups,
        },
        rng,
    )?;
    let fc = Linear::new("fc", w2 * (h / 4) * (w / 4), cfg.classes, cfg.groups, rng)?;
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(conv1),
        Box::new(Relu::new("relu1")),
        Box::new(MaxPool2d::new("pool1", 2)),
        Box::new(conv2),
        Box::new(Relu::new("relu2")),
        Box::new(MaxPool2d::new("pool2", 2)),
        Box::new(conv3),
        Box::new(Relu::new("relu3")),
        Box::new(Flatten::new("flatten")),
        Box::new(fc),
    ];
    Network::new(layers, cfg.groups, vec![c, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn default_config_builds_and_runs() {
        let mut net = build_group_cnn(CnnConfig::default(), &mut rng()).unwrap();
        let y = net.forward(&Tensor::zeros(&[2, 3, 16, 16]), false).unwrap();
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn cost_fraction_tracks_width_level() {
        let mut net = build_group_cnn(CnnConfig::default(), &mut rng()).unwrap();
        let full = net.cost().unwrap().macs;
        for g in 1..=4usize {
            let c = net.cost_at(g).unwrap().macs;
            let frac = c / full;
            let expect = g as f64 / 4.0;
            assert!(
                (frac - expect).abs() < 0.01,
                "width {g}/4: cost fraction {frac:.4} vs {expect}"
            );
        }
    }

    #[test]
    fn forward_works_at_every_width() {
        let mut net = build_group_cnn(CnnConfig::default(), &mut rng()).unwrap();
        for g in 1..=4 {
            net.set_active_groups(g).unwrap();
            let y = net.forward(&Tensor::zeros(&[1, 3, 16, 16]), false).unwrap();
            assert_eq!(y.shape(), &[1, 10], "width {g}");
        }
    }

    #[test]
    fn pruned_logits_unchanged_by_inactive_groups() {
        // Dropping groups then re-adding them reproduces the original
        // full-width logits exactly (no retraining needed — Fig 3c).
        let mut net = build_group_cnn(CnnConfig::default(), &mut rng()).unwrap();
        let x = Tensor::full(&[1, 3, 16, 16], 0.25);
        let full1 = net.forward(&x, false).unwrap();
        net.set_active_groups(1).unwrap();
        let _ = net.forward(&x, false).unwrap();
        net.set_active_groups(4).unwrap();
        let full2 = net.forward(&x, false).unwrap();
        assert_eq!(full1.data(), full2.data());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(build_group_cnn(
            CnnConfig {
                base_width: 30,
                ..CnnConfig::default()
            },
            &mut rng()
        )
        .is_err());
        assert!(build_group_cnn(
            CnnConfig {
                input: (3, 10, 10),
                ..CnnConfig::default()
            },
            &mut rng()
        )
        .is_err());
        assert!(build_group_cnn(
            CnnConfig {
                classes: 0,
                ..CnnConfig::default()
            },
            &mut rng()
        )
        .is_err());
        assert!(build_group_cnn(
            CnnConfig {
                base_width: 0,
                ..CnnConfig::default()
            },
            &mut rng()
        )
        .is_err());
    }

    #[test]
    fn parameter_budget_is_single_model() {
        let net = build_group_cnn(CnnConfig::default(), &mut rng()).unwrap();
        let cost = net.cost().unwrap();
        // conv1: 32·3·9+32; conv2: 64·8·9+64; conv3: 64·16·9+64;
        // fc: 1024·10+10.
        let expect =
            (32 * 3 * 9 + 32) + (64 * 8 * 9 + 64) + (64 * 16 * 9 + 64) + (64 * 4 * 4 * 10 + 10);
        assert_eq!(cost.params_total, expect);
        assert_eq!(cost.params, expect, "full width uses all params");
    }
}
