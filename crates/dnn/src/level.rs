//! Width levels: the discrete configurations of a dynamic DNN.
//!
//! The paper uses a four-increment design — the 25 %, 50 %, 75 % and 100 %
//! models. A [`WidthLevel`] is an index into a dynamic DNN's level list;
//! [`FourLevel`] names the paper's four.

use std::fmt;

/// Index of a width configuration (0 = narrowest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WidthLevel(pub usize);

impl WidthLevel {
    /// The narrowest configuration.
    pub const MIN: WidthLevel = WidthLevel(0);

    /// Index accessor.
    pub fn index(self) -> usize {
        self.0
    }

    /// The number of active groups this level corresponds to (1-based).
    pub fn active_groups(self) -> usize {
        self.0 + 1
    }
}

impl fmt::Display for WidthLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "level{}", self.0)
    }
}

impl From<usize> for WidthLevel {
    fn from(i: usize) -> Self {
        Self(i)
    }
}

/// The paper's named four-level scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FourLevel {
    /// The 25 % model: one of four groups active.
    P25,
    /// The 50 % model.
    P50,
    /// The 75 % model.
    P75,
    /// The full (100 %) model.
    P100,
}

impl FourLevel {
    /// All four levels in ascending width order.
    pub const ALL: [FourLevel; 4] = [Self::P25, Self::P50, Self::P75, Self::P100];

    /// The nominal width fraction.
    pub fn fraction(self) -> f64 {
        match self {
            Self::P25 => 0.25,
            Self::P50 => 0.50,
            Self::P75 => 0.75,
            Self::P100 => 1.00,
        }
    }

    /// Converts to a generic level index.
    pub fn level(self) -> WidthLevel {
        WidthLevel(match self {
            Self::P25 => 0,
            Self::P50 => 1,
            Self::P75 => 2,
            Self::P100 => 3,
        })
    }

    /// Converts a generic index back, if it is one of the four.
    pub fn from_level(level: WidthLevel) -> Option<Self> {
        Self::ALL.get(level.0).copied()
    }
}

impl fmt::Display for FourLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}% model", self.fraction() * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_round_trips() {
        for (i, l) in FourLevel::ALL.iter().enumerate() {
            assert_eq!(l.level().index(), i);
            assert_eq!(FourLevel::from_level(WidthLevel(i)), Some(*l));
        }
        assert_eq!(FourLevel::from_level(WidthLevel(4)), None);
    }

    #[test]
    fn fractions_ascend() {
        let f: Vec<f64> = FourLevel::ALL.iter().map(|l| l.fraction()).collect();
        assert_eq!(f, vec![0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn active_groups_is_one_based() {
        assert_eq!(WidthLevel(0).active_groups(), 1);
        assert_eq!(FourLevel::P100.level().active_groups(), 4);
    }

    #[test]
    fn display_names() {
        assert_eq!(FourLevel::P25.to_string(), "25% model");
        assert_eq!(WidthLevel(2).to_string(), "level2");
    }

    #[test]
    fn ordering_follows_width() {
        assert!(FourLevel::P25 < FourLevel::P100);
        assert!(WidthLevel(0) < WidthLevel(3));
    }
}
