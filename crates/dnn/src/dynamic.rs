//! `DynamicDnn`: a live, trained network with a runtime width knob.
//!
//! This is the *application* of the paper's Fig 5: it exposes a knob
//! (width level) and monitors (accuracy from its profile, live softmax
//! confidence) to the runtime manager, and executes real inference through
//! [`eml_nn::Network`].

use eml_nn::loss::softmax;
use eml_nn::tensor::Tensor;
use eml_nn::train::IncrementalReport;
use eml_nn::{ActScaleReport, Network, Precision};

use crate::error::{DnnError, Result};
use crate::level::WidthLevel;
use crate::profile::DnnProfile;

/// A dynamic DNN: network + profile + current width and precision
/// level.
#[derive(Debug)]
pub struct DynamicDnn {
    net: Network,
    profile: DnnProfile,
    level: WidthLevel,
    precision: Precision,
    switches: usize,
    precision_switches: usize,
}

impl DynamicDnn {
    /// Wraps a trained network with a matching profile, starting at full
    /// width.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidProfile`] if the profile's level count
    /// differs from the network's group count.
    pub fn new(mut net: Network, profile: DnnProfile) -> Result<Self> {
        if profile.level_count() != net.groups() {
            return Err(DnnError::InvalidProfile {
                reason: format!(
                    "profile has {} levels but network has {} groups",
                    profile.level_count(),
                    net.groups()
                ),
            });
        }
        let level = profile.max_level();
        net.set_active_groups(level.active_groups())?;
        Ok(Self {
            net,
            profile,
            level,
            precision: Precision::default(),
            switches: 0,
            precision_switches: 0,
        })
    }

    /// Builds the profile from an incremental-training report, then wraps
    /// the network.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidProfile`] if the report lacks evaluations
    /// or level counts mismatch.
    pub fn from_trained(
        name: impl Into<String>,
        mut net: Network,
        report: &IncrementalReport,
    ) -> Result<Self> {
        let acc = report.accuracy_per_width();
        if acc.is_empty() {
            return Err(DnnError::InvalidProfile {
                reason: "incremental report has no evaluations".into(),
            });
        }
        let profile = DnnProfile::from_network(name, &mut net, &acc)?;
        Self::new(net, profile)
    }

    /// The current width level.
    pub fn level(&self) -> WidthLevel {
        self.level
    }

    /// The profile (workloads, accuracies, footprints).
    pub fn profile(&self) -> &DnnProfile {
        &self.profile
    }

    /// Number of width switches performed so far.
    pub fn switch_count(&self) -> usize {
        self.switches
    }

    /// The current data-precision mode.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Number of precision switches performed so far.
    pub fn precision_switch_count(&self) -> usize {
        self.precision_switches
    }

    /// Switches the data-precision mode — the paper's second
    /// application knob, next to width. [`Precision::Int8`] runs
    /// forward passes on the real int8 kernel path (measured latency
    /// win for a small, measured accuracy cost);
    /// [`Precision::F32`] restores full-precision compute. Like the
    /// width switch, no parameters change: the int8 path quantises
    /// from the master `f32` weights, so switching back is lossless.
    ///
    /// Int8 activation scales are *dynamic* by default (each batch
    /// quantises against its own max-abs), so a sample's output — and
    /// therefore measured accuracy — depends on the composition of the
    /// batch it shares; compare eval runs only at the same batch size,
    /// or freeze static scales first via
    /// [`eml_nn::Network::freeze_act_scales`] on
    /// [`Self::network_mut`] after a calibration pass.
    pub fn set_precision(&mut self, precision: Precision) {
        // Always pushed down, never guarded on the cached field:
        // `network_mut` can switch the backend underneath us, and
        // re-selecting the active backend is free (layers keep their
        // packed caches), so this re-syncs instead of trusting state.
        self.net.set_precision(precision);
        if precision != self.precision {
            self.precision = precision;
            self.precision_switches += 1;
        }
    }

    /// Static calibration for int8 serving: runs every batch through a
    /// quantised forward with the activation observers recording, then
    /// freezes the observed ranges as static per-layer scales —
    /// [`eml_nn::Network::calibrate`]. With scales frozen and the
    /// precision knob at [`Precision::Int8`], inference runs the
    /// *chained* int8 pipeline (one input quantisation, one logits
    /// dequantisation, saturating-i8 layer edges in between — see
    /// [`eml_nn::Network::plan_quant_chain`]) and becomes reproducible
    /// across batch compositions. The serving backend is restored
    /// afterwards, so calibrating an f32-serving DNN ahead of an int8
    /// switch is safe.
    ///
    /// # Errors
    ///
    /// Propagates [`eml_nn::Network::calibrate`] errors (empty batch
    /// set, shape mismatches).
    pub fn calibrate<I>(&mut self, batches: I) -> Result<Vec<ActScaleReport>>
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<Tensor>,
    {
        Ok(self.net.calibrate(batches)?)
    }

    /// Immutable access to the wrapped network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the wrapped network (e.g. for fine-tuning).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Switches the width level — the runtime knob. No parameters change;
    /// the switch is free of retraining by construction (paper Fig 3c).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::UnknownLevel`] for out-of-range levels.
    pub fn set_level(&mut self, level: WidthLevel) -> Result<()> {
        if level.index() >= self.profile.level_count() {
            return Err(DnnError::UnknownLevel {
                level: level.index(),
                count: self.profile.level_count(),
            });
        }
        if level != self.level {
            self.net.set_active_groups(level.active_groups())?;
            self.level = level;
            self.switches += 1;
        }
        Ok(())
    }

    /// Runs inference on a `[N, C, H, W]` batch, returning predicted class
    /// indices.
    ///
    /// # Errors
    ///
    /// Propagates network shape errors.
    pub fn infer(&mut self, batch: &Tensor) -> Result<Vec<usize>> {
        Ok(self.net.predict(batch)?)
    }

    /// Mean softmax confidence over a batch — the live platform-independent
    /// monitor of Fig 5.
    ///
    /// # Errors
    ///
    /// Propagates network shape errors.
    pub fn confidence(&mut self, batch: &Tensor) -> Result<f64> {
        let logits = self.net.forward(batch, false)?;
        let probs = softmax(&logits)?;
        let (n, k) = (probs.shape()[0], probs.shape()[1]);
        let mut total = 0.0f64;
        for ni in 0..n {
            let row = &probs.data()[ni * k..(ni + 1) * k];
            total += row.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
        }
        Ok(total / n as f64)
    }

    /// Expected top-1 accuracy (percent) at the current level, from the
    /// profile.
    pub fn expected_top1(&self) -> f64 {
        self.profile
            .top1(self.level)
            .expect("current level always exists in profile")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eml_nn::arch::{build_group_cnn, CnnConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dnn() -> DynamicDnn {
        let mut rng = StdRng::seed_from_u64(0);
        let net = build_group_cnn(CnnConfig::default(), &mut rng).unwrap();
        let mut net2 = net;
        let profile = DnnProfile::from_network("t", &mut net2, &[0.5, 0.6, 0.65, 0.7]).unwrap();
        DynamicDnn::new(net2, profile).unwrap()
    }

    #[test]
    fn starts_at_full_width() {
        let d = dnn();
        assert_eq!(d.level(), WidthLevel(3));
        assert_eq!(d.network().active_groups(), 4);
        assert_eq!(d.switch_count(), 0);
        assert!((d.expected_top1() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn switching_changes_width_and_counts() {
        let mut d = dnn();
        d.set_level(WidthLevel(0)).unwrap();
        assert_eq!(d.network().active_groups(), 1);
        assert_eq!(d.switch_count(), 1);
        // No-op switch doesn't count.
        d.set_level(WidthLevel(0)).unwrap();
        assert_eq!(d.switch_count(), 1);
        assert!(d.set_level(WidthLevel(9)).is_err());
    }

    #[test]
    fn inference_works_at_all_levels() {
        let mut d = dnn();
        let x = Tensor::full(&[2, 3, 16, 16], 0.1);
        for i in 0..4 {
            d.set_level(WidthLevel(i)).unwrap();
            let preds = d.infer(&x).unwrap();
            assert_eq!(preds.len(), 2);
            assert!(preds.iter().all(|&p| p < 10));
            let conf = d.confidence(&x).unwrap();
            assert!((0.1..=1.0).contains(&conf), "confidence {conf}");
        }
    }

    #[test]
    fn precision_knob_switches_and_counts() {
        let mut d = dnn();
        assert_eq!(d.precision(), Precision::F32);
        let x = Tensor::full(&[2, 3, 16, 16], 0.1);
        let f32_preds = d.infer(&x).unwrap();
        d.set_precision(Precision::Int8);
        assert_eq!(d.precision(), Precision::Int8);
        assert_eq!(d.precision_switch_count(), 1);
        // No-op switch doesn't count.
        d.set_precision(Precision::Int8);
        assert_eq!(d.precision_switch_count(), 1);
        let int8_preds = d.infer(&x).unwrap();
        assert_eq!(int8_preds.len(), 2);
        // Switching back is lossless: the int8 path quantises from the
        // master f32 weights, so f32 inference is bit-identical to
        // before the excursion.
        d.set_precision(Precision::F32);
        assert_eq!(d.infer(&x).unwrap(), f32_preds);
        assert_eq!(d.precision_switch_count(), 2);
    }

    /// `network_mut` can switch the backend underneath the wrapper
    /// (e.g. during calibration); re-issuing the knob must re-sync the
    /// network rather than trust the cached mode.
    #[test]
    fn set_precision_resyncs_after_network_mut_divergence() {
        let mut d = dnn();
        let x = Tensor::full(&[1, 3, 16, 16], 0.2);
        let f32_out = d.network_mut().forward(&x, false).unwrap();
        d.set_precision(Precision::Int8);
        let int8_out = d.network_mut().forward(&x, false).unwrap();
        assert_ne!(f32_out.data(), int8_out.data(), "backends distinguishable");
        // Diverge through the escape hatch: the wrapper now reports
        // Int8 while the network actually runs f32.
        d.network_mut().set_precision(Precision::F32);
        assert_eq!(d.precision(), Precision::Int8);
        // Re-issuing the same knob value pushes it down regardless…
        d.set_precision(Precision::Int8);
        assert_eq!(
            d.network_mut().forward(&x, false).unwrap().data(),
            int8_out.data(),
            "re-issued knob must re-sync the backend"
        );
        // …but is not a counted switch: the knob mode never changed.
        assert_eq!(d.precision_switch_count(), 1);
    }

    /// `set_level` under `Precision::Int8` must invalidate the cached
    /// chain plan: per-prefix weight scales (and so every
    /// requantisation multiplier) change with the active group set.
    /// Pinned with twins: one DNN plans and runs the chain at full
    /// width before switching down, the other only ever plans at the
    /// narrow width — a stale plan would make them diverge.
    #[test]
    fn width_switch_replans_the_quant_chain() {
        let mut a = dnn();
        let mut b = dnn();
        let mut rng = StdRng::seed_from_u64(31);
        let cal = vec![Tensor::random(&[2, 3, 16, 16], &mut rng)];
        for d in [&mut a, &mut b] {
            d.set_precision(Precision::Int8);
            let report = d.calibrate(&cal).expect("calibration runs");
            assert_eq!(report.len(), 4, "all quantised layers report a scale");
        }
        let x = Tensor::random(&[1, 3, 16, 16], &mut rng);
        // `a` engages (and caches) the chain plan at full width…
        let wide = a.network_mut().forward(&x, false).expect("wide forward");
        // …then both switch to half width; `b` never planned wide.
        a.set_level(WidthLevel(1)).unwrap();
        b.set_level(WidthLevel(1)).unwrap();
        let ya = a
            .network_mut()
            .forward(&x, false)
            .expect("a narrow forward");
        let yb = b
            .network_mut()
            .forward(&x, false)
            .expect("b narrow forward");
        assert_eq!(
            ya.data(),
            yb.data(),
            "stale chain plan after a width switch"
        );
        assert_ne!(wide.data(), ya.data(), "width actually changed the logits");
        // And back up: the replanned full-width chain reproduces the
        // original logits exactly (frozen scales, unchanged weights).
        a.set_level(WidthLevel(3)).unwrap();
        let wide2 = a.network_mut().forward(&x, false).expect("re-widened");
        assert_eq!(wide.data(), wide2.data());
    }

    #[test]
    fn precision_and_width_knobs_compose() {
        let mut d = dnn();
        d.set_precision(Precision::Int8);
        let x = Tensor::full(&[1, 3, 16, 16], 0.2);
        for i in 0..4 {
            d.set_level(WidthLevel(i)).unwrap();
            let preds = d.infer(&x).unwrap();
            assert_eq!(preds.len(), 1);
            let conf = d.confidence(&x).unwrap();
            assert!((0.1..=1.0).contains(&conf), "width {i}: confidence {conf}");
        }
    }

    #[test]
    fn switching_preserves_parameters() {
        let mut d = dnn();
        let x = Tensor::full(&[1, 3, 16, 16], 0.2);
        let before = d.network_mut().forward(&x, false).unwrap();
        d.set_level(WidthLevel(0)).unwrap();
        d.set_level(WidthLevel(3)).unwrap();
        let after = d.network_mut().forward(&x, false).unwrap();
        assert_eq!(before.data(), after.data());
    }

    #[test]
    fn mismatched_profile_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = build_group_cnn(CnnConfig::default(), &mut rng).unwrap();
        let profile = DnnProfile::reference("four-levels");
        // Reference profile has 4 levels and the net 4 groups: OK.
        assert!(DynamicDnn::new(net, profile).is_ok());
        let net2 = build_group_cnn(
            CnnConfig {
                groups: 2,
                base_width: 8,
                ..CnnConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(DynamicDnn::new(net2, DnnProfile::reference("four")).is_err());
    }
}
