//! # eml-dnn
//!
//! Dynamic DNNs for the `emlrt` reproduction of *Xun et al., "Optimising
//! Resource Management for Embedded Machine Learning" (DATE 2020)*.
//!
//! A *dynamic DNN* (paper §III-C, Fig 3) stores several width
//! configurations inside a single model: the channels of every convolution
//! are partitioned into `G` groups, trained incrementally, and later groups
//! can be pruned at runtime for latency/energy — or re-enabled for accuracy
//! — **without retraining**.
//!
//! Two views of the same concept live here:
//!
//! - [`profile::DnnProfile`] — plain data for the runtime manager: per
//!   width level, the platform [`Workload`](eml_platform::Workload), the
//!   expected top-1 accuracy and the memory footprint. Build it from the
//!   paper's published numbers ([`profile::DnnProfile::reference`]) or from
//!   a live trained network.
//! - [`dynamic::DynamicDnn`] — a live [`eml_nn::Network`] with a width
//!   knob, producing real predictions and softmax-confidence monitors.
//!
//! [`switching::SwitchCostModel`] quantifies why a single dynamic model
//! beats a zoo of statically pruned models at runtime.
//!
//! ## Quick start
//!
//! ```
//! use eml_dnn::level::WidthLevel;
//! use eml_dnn::profile::DnnProfile;
//!
//! let profile = DnnProfile::reference("camera-dnn");
//! // The paper's four configurations with Fig 4(b) accuracies.
//! assert_eq!(profile.level_count(), 4);
//! assert_eq!(profile.top1(WidthLevel(3)).unwrap(), 71.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dynamic;
pub mod error;
pub mod level;
pub mod profile;
pub mod switching;

pub use dynamic::DynamicDnn;
pub use eml_nn::{ActScaleReport, Precision};
pub use error::{DnnError, Result};
pub use level::{FourLevel, WidthLevel};
pub use profile::{DnnProfile, LevelSpec};
pub use switching::{SwitchCost, SwitchCostModel};
