//! Error types for the dynamic-DNN layer.

use std::error::Error;
use std::fmt;

/// Errors returned by dynamic-DNN operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DnnError {
    /// A profile was constructed from inconsistent data.
    InvalidProfile {
        /// Human-readable reason.
        reason: String,
    },
    /// A width level outside the profile's range was requested.
    UnknownLevel {
        /// The offending level index.
        level: usize,
        /// Number of levels available.
        count: usize,
    },
    /// An underlying neural-network error.
    Nn(eml_nn::NnError),
}

impl DnnError {
    /// Wraps an [`eml_nn::NnError`].
    pub fn from_nn(e: eml_nn::NnError) -> Self {
        Self::Nn(e)
    }
}

impl fmt::Display for DnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidProfile { reason } => write!(f, "invalid profile: {reason}"),
            Self::UnknownLevel { level, count } => {
                write!(f, "unknown width level {level} (profile has {count})")
            }
            Self::Nn(e) => write!(f, "network error: {e}"),
        }
    }
}

impl Error for DnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<eml_nn::NnError> for DnnError {
    fn from(e: eml_nn::NnError) -> Self {
        Self::Nn(e)
    }
}

/// Convenience alias for dynamic-DNN results.
pub type Result<T> = std::result::Result<T, DnnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DnnError::UnknownLevel { level: 5, count: 4 };
        assert!(e.to_string().contains("level 5"));
        assert!(e.source().is_none());

        let inner = eml_nn::NnError::InvalidConfig { reason: "x".into() };
        let e = DnnError::from_nn(inner.clone());
        assert!(e.to_string().contains("network error"));
        assert!(e.source().is_some());
        let e2: DnnError = inner.into();
        assert_eq!(e, e2);
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DnnError>();
    }
}
