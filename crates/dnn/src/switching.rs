//! Reconfiguration-cost models: dynamic width switching vs the
//! static-pruning baseline.
//!
//! The paper (§III-B, citing Park et al. \[20\]) notes that covering many
//! hardware settings with *separate* statically pruned models costs
//! significant storage and that switching between them at runtime causes
//! delay and energy. A dynamic DNN keeps every configuration inside one
//! model's memory footprint, so a width switch touches no parameter memory
//! at all.

use eml_platform::units::{Energy, Power, TimeSpan};

use crate::error::Result;
use crate::level::WidthLevel;
use crate::profile::DnnProfile;

/// Cost model for swapping model configurations at runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchCostModel {
    /// Sustained memory bandwidth for loading parameters (bytes/s).
    pub memory_bandwidth: f64,
    /// Average DRAM power while streaming parameters.
    pub memory_power: Power,
}

impl Default for SwitchCostModel {
    /// LPDDR3-class defaults: 6.4 GB/s sustained, 1.2 W while streaming.
    fn default() -> Self {
        Self {
            memory_bandwidth: 6.4e9,
            memory_power: Power::from_watts(1.2),
        }
    }
}

/// The latency and energy of one model switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchCost {
    /// Time until the new configuration is ready.
    pub latency: TimeSpan,
    /// Energy spent on the switch.
    pub energy: Energy,
}

impl SwitchCost {
    /// A free switch.
    pub const FREE: SwitchCost = SwitchCost {
        latency: TimeSpan::ZERO,
        energy: Energy::ZERO,
    };
}

impl SwitchCostModel {
    /// Cost of a dynamic-DNN width switch: zero, because every width shares
    /// the same resident parameters (paper Fig 3c).
    pub fn dynamic_switch(&self) -> SwitchCost {
        SwitchCost::FREE
    }

    /// Cost for a static-pruning baseline to switch to `to`: the target
    /// model's parameters must be (re)loaded from backing storage into the
    /// inference engine.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DnnError::UnknownLevel`] for out-of-range levels.
    pub fn static_reload(&self, profile: &DnnProfile, to: WidthLevel) -> Result<SwitchCost> {
        let bytes = profile.level(to)?.param_bytes;
        let latency = TimeSpan::from_secs(bytes / self.memory_bandwidth);
        Ok(SwitchCost {
            latency,
            energy: self.memory_power * latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_switch_is_free() {
        let m = SwitchCostModel::default();
        let c = m.dynamic_switch();
        assert_eq!(c.latency, TimeSpan::ZERO);
        assert_eq!(c.energy, Energy::ZERO);
    }

    #[test]
    fn static_reload_scales_with_model_size() {
        let m = SwitchCostModel::default();
        let p = DnnProfile::reference("dnn");
        let small = m.static_reload(&p, WidthLevel(0)).unwrap();
        let large = m.static_reload(&p, WidthLevel(3)).unwrap();
        assert!(large.latency > small.latency);
        assert!(large.energy > small.energy);
        // 2.4 MB at 6.4 GB/s = 375 µs.
        assert!((large.latency.as_millis() - 0.375).abs() < 1e-6);
    }

    #[test]
    fn static_reload_unknown_level() {
        let m = SwitchCostModel::default();
        let p = DnnProfile::reference("dnn");
        assert!(m.static_reload(&p, WidthLevel(7)).is_err());
    }
}
