//! `DnnProfile`: the platform-facing description of a dynamic DNN.
//!
//! The runtime manager and simulator never need live tensors — they need,
//! per width level: the workload (MACs, bytes) to hand to the platform
//! model, the expected top-1 accuracy, and the memory footprint. A profile
//! packages exactly that, and can be built either from the paper's
//! published numbers ([`DnnProfile::reference`]) or from a live, trained
//! [`eml_nn::Network`] ([`DnnProfile::from_network`]).

use std::fmt;

use eml_platform::paper;
use eml_platform::presets;
use eml_platform::workload::Workload;

use crate::error::{DnnError, Result};
use crate::level::WidthLevel;

/// One width configuration of a dynamic DNN.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelSpec {
    /// Fraction of full-width MACs this level costs (`(0, 1]`).
    pub cost_fraction: f64,
    /// The platform workload of one inference at this level.
    pub workload: Workload,
    /// Expected top-1 accuracy in percent.
    pub top1_percent: f64,
    /// Parameters used at this level, in bytes (4 bytes per `f32`).
    pub param_bytes: f64,
}

/// A dynamic DNN seen from the resource manager's side.
#[derive(Debug, Clone, PartialEq)]
pub struct DnnProfile {
    name: String,
    levels: Vec<LevelSpec>,
    /// Bytes of the single stored model (all groups).
    model_bytes: f64,
}

impl DnnProfile {
    /// Creates a profile from explicit level specs (ascending width).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidProfile`] if `levels` is empty, fractions
    /// are not ascending in `(0, 1]`, or accuracies are not finite.
    pub fn new(name: impl Into<String>, levels: Vec<LevelSpec>, model_bytes: f64) -> Result<Self> {
        if levels.is_empty() {
            return Err(DnnError::InvalidProfile {
                reason: "profile needs at least one level".into(),
            });
        }
        let mut prev = 0.0;
        for (i, l) in levels.iter().enumerate() {
            if !(l.cost_fraction > prev && l.cost_fraction <= 1.0 + 1e-9) {
                return Err(DnnError::InvalidProfile {
                    reason: format!(
                        "level {i}: cost fraction {} must ascend within (0, 1]",
                        l.cost_fraction
                    ),
                });
            }
            if !l.top1_percent.is_finite() || !(0.0..=100.0).contains(&l.top1_percent) {
                return Err(DnnError::InvalidProfile {
                    reason: format!("level {i}: top-1 {}% out of range", l.top1_percent),
                });
            }
            prev = l.cost_fraction;
        }
        Ok(Self {
            name: name.into(),
            levels,
            model_bytes,
        })
    }

    /// The paper's reference dynamic DNN: four levels at 25/50/75/100 % of
    /// the calibration reference workload, with the published Fig 4(b)
    /// accuracies (56 / 62.7 / 68.8 / 71.2 %).
    pub fn reference(name: impl Into<String>) -> Self {
        let base = presets::reference_workload();
        let levels = paper::WIDTH_LEVELS
            .iter()
            .zip(paper::FIG4B_TOP1)
            .map(|(&frac, top1)| LevelSpec {
                cost_fraction: frac,
                workload: base.scaled(frac),
                top1_percent: top1,
                param_bytes: base.param_bytes() * frac,
            })
            .collect();
        Self::new(name, levels, base.param_bytes()).expect("reference data is valid")
    }

    /// Builds a profile from a live network: exact cost fractions from the
    /// per-layer cost model, and the provided per-level accuracies
    /// (fractions in `[0, 1]`, e.g. from
    /// [`eml_nn::train::IncrementalReport::accuracy_per_width`]).
    ///
    /// The workloads are expressed on the platform's calibration scale: the
    /// full-width level maps to the reference workload so that latency
    /// predictions correspond to the paper's measured full-model anchors.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidProfile`] if `accuracy_per_width.len()`
    /// differs from the network's group count, and propagates cost-model
    /// errors.
    pub fn from_network(
        name: impl Into<String>,
        net: &mut eml_nn::Network,
        accuracy_per_width: &[f64],
    ) -> Result<Self> {
        let groups = net.groups();
        if accuracy_per_width.len() != groups {
            return Err(DnnError::InvalidProfile {
                reason: format!(
                    "need {} accuracies (one per width), got {}",
                    groups,
                    accuracy_per_width.len()
                ),
            });
        }
        let full = net.cost_at(groups).map_err(DnnError::from_nn)?;
        let base = presets::reference_workload();
        let mut levels = Vec::with_capacity(groups);
        for g in 1..=groups {
            let c = net.cost_at(g).map_err(DnnError::from_nn)?;
            let frac = c.macs / full.macs;
            levels.push(LevelSpec {
                cost_fraction: frac,
                workload: base.scaled(frac),
                top1_percent: accuracy_per_width[g - 1] * 100.0,
                param_bytes: c.params as f64 * 4.0,
            });
        }
        Self::new(name, levels, full.params_total as f64 * 4.0)
    }

    /// The profile's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of width levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// All width levels, narrowest first.
    pub fn levels(&self) -> impl ExactSizeIterator<Item = (WidthLevel, &LevelSpec)> {
        self.levels
            .iter()
            .enumerate()
            .map(|(i, l)| (WidthLevel(i), l))
    }

    /// Looks up one level.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::UnknownLevel`] for out-of-range levels.
    pub fn level(&self, level: WidthLevel) -> Result<&LevelSpec> {
        self.levels.get(level.0).ok_or(DnnError::UnknownLevel {
            level: level.0,
            count: self.levels.len(),
        })
    }

    /// The widest level index.
    pub fn max_level(&self) -> WidthLevel {
        WidthLevel(self.levels.len() - 1)
    }

    /// Bytes of the single stored dynamic model.
    ///
    /// Contrast with a static-pruning baseline, which must store one model
    /// *per configuration*: [`DnnProfile::static_baseline_bytes`].
    pub fn model_bytes(&self) -> f64 {
        self.model_bytes
    }

    /// Total storage a static-pruning baseline needs to cover the same
    /// configurations (one separate model per level — paper §III-B).
    pub fn static_baseline_bytes(&self) -> f64 {
        self.levels.iter().map(|l| l.param_bytes).sum()
    }

    /// Accuracy in percent at `level`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::UnknownLevel`] for out-of-range levels.
    pub fn top1(&self, level: WidthLevel) -> Result<f64> {
        Ok(self.level(level)?.top1_percent)
    }

    /// Workload of one inference at `level`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::UnknownLevel`] for out-of-range levels.
    pub fn workload(&self, level: WidthLevel) -> Result<&Workload> {
        Ok(&self.level(level)?.workload)
    }
}

impl fmt::Display for DnnProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} levels)", self.name, self.levels.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_profile_matches_paper() {
        let p = DnnProfile::reference("dnn");
        assert_eq!(p.level_count(), 4);
        for (i, (level, spec)) in p.levels().enumerate() {
            assert_eq!(level.index(), i);
            assert_eq!(spec.top1_percent, paper::FIG4B_TOP1[i]);
            assert!((spec.cost_fraction - paper::WIDTH_LEVELS[i]).abs() < 1e-12);
        }
        // Full level workload = reference workload MACs.
        let full = p.workload(WidthLevel(3)).unwrap();
        assert_eq!(full.macs(), presets::REFERENCE_MACS);
    }

    #[test]
    fn static_baseline_needs_more_storage() {
        let p = DnnProfile::reference("dnn");
        // 0.25 + 0.5 + 0.75 + 1.0 = 2.5× the single dynamic model.
        assert!((p.static_baseline_bytes() / p.model_bytes() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn unknown_level_is_an_error() {
        let p = DnnProfile::reference("dnn");
        assert!(p.level(WidthLevel(4)).is_err());
        assert!(p.top1(WidthLevel(9)).is_err());
        assert!(p.level(p.max_level()).is_ok());
    }

    #[test]
    fn validation_rejects_bad_levels() {
        let base = presets::reference_workload();
        let spec = |frac: f64, top1: f64| LevelSpec {
            cost_fraction: frac,
            workload: base.scaled(frac.max(0.01)),
            top1_percent: top1,
            param_bytes: 10.0,
        };
        assert!(DnnProfile::new("p", vec![], 1.0).is_err());
        assert!(DnnProfile::new("p", vec![spec(0.0, 50.0)], 1.0).is_err());
        assert!(DnnProfile::new("p", vec![spec(1.5, 50.0)], 1.0).is_err());
        assert!(
            DnnProfile::new("p", vec![spec(0.5, 50.0), spec(0.25, 60.0)], 1.0).is_err(),
            "fractions must ascend"
        );
        assert!(DnnProfile::new("p", vec![spec(0.5, 150.0)], 1.0).is_err());
        assert!(DnnProfile::new("p", vec![spec(0.5, f64::NAN)], 1.0).is_err());
    }

    #[test]
    fn from_network_uses_real_cost_fractions() {
        use eml_nn::arch::{build_group_cnn, CnnConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = build_group_cnn(CnnConfig::default(), &mut rng).unwrap();
        let p = DnnProfile::from_network("live", &mut net, &[0.5, 0.6, 0.65, 0.7]).unwrap();
        assert_eq!(p.level_count(), 4);
        let fracs: Vec<f64> = p.levels().map(|(_, s)| s.cost_fraction).collect();
        for (i, f) in fracs.iter().enumerate() {
            let expect = (i + 1) as f64 / 4.0;
            assert!((f - expect).abs() < 0.01, "level {i}: {f}");
        }
        assert!((p.top1(WidthLevel(0)).unwrap() - 50.0).abs() < 1e-9);
        // Wrong accuracy count rejected.
        assert!(DnnProfile::from_network("bad", &mut net, &[0.5]).is_err());
    }
}
