//! # eml-sim
//!
//! Time-stepped system simulation with the RTM in the loop, for the `emlrt`
//! reproduction of *Xun et al., "Optimising Resource Management for Embedded
//! Machine Learning" (DATE 2020)*.
//!
//! The simulator executes multi-application scenarios on a modelled SoC:
//! applications arrive, depart and change requirements; the RTM re-allocates
//! in response; power is integrated with per-application duty cycling; a
//! lumped-RC thermal model closes the loop through a reactive thermal
//! governor. [`scenario::fig2_scenario`] reproduces the paper's Fig 2
//! storyline end to end, and [`workload::generate`] synthesises whole
//! seeded scenario families (diurnal arrivals, heavy-tailed tenants,
//! flash crowds, app churn, chaos) for robustness soaks.
//!
//! ## Quick start
//!
//! ```
//! use eml_sim::scenario;
//!
//! # fn main() -> Result<(), eml_sim::SimError> {
//! let sim = scenario::fig2_scenario()?;
//! let trace = sim.run()?;
//! let summary = trace.summary();
//! assert_eq!(summary.thermal_violations, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod scenario;
pub mod simulator;
pub mod trace;
pub mod workload;

pub use error::{Result, SimError};
pub use simulator::{
    Action, ChaosFault, ExecutionBackend, ScenarioEvent, SimConfig, Simulator, ThermalPolicy,
};
pub use trace::{Decision, DecisionReason, Sample, Trace, TraceSummary};
pub use workload::{GeneratedWorkload, WorkloadConfig};
