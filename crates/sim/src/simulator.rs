//! The time-stepped system simulator with the RTM in the loop.
//!
//! The simulator advances in fixed steps. At each step it:
//!
//! 1. applies any scenario events that are due (arrivals, departures,
//!    requirement changes) and re-invokes the RTM when they occur;
//! 2. computes the SoC power draw from the current allocation, duty-cycling
//!    each DNN by `latency / period` (an application that finishes early
//!    idles until its next frame);
//! 3. advances the lumped-RC thermal state;
//! 4. runs the *reactive thermal governor*: when the die exceeds its limit
//!    the RTM is re-invoked with a tightened power cap
//!    (`sustainable × thermal_backoff`); when it cools below
//!    `limit − hysteresis` the cap is lifted — the t = 15 s dynamics of the
//!    paper's Fig 2.
//!
//! Everything observable is recorded in a [`Trace`].

use eml_core::knobs::commands_for;
use eml_core::rtm::{Allocation, AppSpec, Rtm, RtmConfig};
use eml_platform::thermal::ThermalState;
use eml_platform::units::{Power, TimeSpan};
use eml_platform::Soc;

use crate::error::{Result, SimError};
use crate::trace::{AppSample, Decision, DecisionReason, Sample, Trace};

/// A timed scenario event.
#[derive(Debug, Clone)]
pub struct ScenarioEvent {
    /// When the event fires (seconds).
    pub at_secs: f64,
    /// What happens.
    pub action: Action,
}

/// Scenario actions.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Action {
    /// A new application starts.
    Arrive(AppSpec),
    /// An application stops (by name).
    Depart(String),
    /// Replace an application's spec (requirement/objective change).
    Update(AppSpec),
    /// Inject a hostile event into the serving layer
    /// ([`ExecutionBackend::on_chaos`]). Chaos is *not* a decision
    /// trigger — the RTM is not re-invoked; the point is to watch the
    /// serving layer absorb the fault between allocation epochs.
    /// Analytic runs (no backend) ignore chaos events.
    Chaos {
        /// The targeted application.
        app: String,
        /// What happens.
        fault: ChaosFault,
    },
}

/// A hostile serving-layer event scheduled in a scenario — the
/// simulator-side vocabulary for fault injection, kept free of any
/// serving-crate dependency so scenarios stay self-contained. A
/// backend maps these onto its own fault surface (e.g. `eml-serve`'s
/// `FaultKind`), making hostile schedules replay bit-reproducibly
/// alongside arrivals and departures.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ChaosFault {
    /// Panic inside the app's next batched forward pass (contained by
    /// the executor; every rider gets a typed error).
    PanicForward,
    /// Kill the app's serving thread mid-batch (exercises supervised
    /// restart).
    CrashThread,
    /// Spin-delay the app's next batched forward by this span.
    LatencySpike(TimeSpan),
    /// Fail the app's next knob actuation.
    KnobFailure,
    /// Enqueue this many synthetic duplicate requests behind the app's
    /// next batch.
    QueueStorm(usize),
}

/// Thermal-management policy of the in-loop governor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThermalPolicy {
    /// React after the die exceeds its limit (the paper's Fig 2 sequence).
    #[default]
    Reactive,
    /// Throttle as soon as the *predicted steady-state* temperature of the
    /// current allocation exceeds the limit — trades sustained application
    /// performance for zero thermal violations (an ablation the paper's
    /// §V "temperature ... monitored ... DVFS could be then applied"
    /// discussion motivates).
    Proactive,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Step size.
    pub dt: TimeSpan,
    /// Total simulated duration.
    pub duration: TimeSpan,
    /// Sampling interval for the trace.
    pub sample_every: TimeSpan,
    /// Power-cap fraction of sustainable power applied while throttling.
    pub thermal_backoff: f64,
    /// Degrees below the limit at which the throttle is released.
    pub thermal_hysteresis: f64,
    /// When to throttle.
    pub thermal_policy: ThermalPolicy,
    /// RTM configuration used for normal (unthrottled) decisions.
    pub rtm: RtmConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            dt: TimeSpan::from_millis(50.0),
            duration: TimeSpan::from_secs(40.0),
            sample_every: TimeSpan::from_millis(200.0),
            thermal_backoff: 0.6,
            thermal_hysteresis: 10.0,
            thermal_policy: ThermalPolicy::Reactive,
            rtm: RtmConfig::default(),
        }
    }
}

/// Executes allocation decisions against something real during a
/// simulation run — the bridge from the analytic latency model to
/// measured behaviour ("executed mode", [`Simulator::run_executed`]).
///
/// The simulator stays the clock and the policy engine; the backend
/// supplies *measured* per-app latencies. A serving layer implements
/// this by actuating each allocation on a live executor and timing
/// real inference requests (see `eml-serve`'s `ExecutedReplay`).
pub trait ExecutionBackend {
    /// A new allocation was decided at `at_secs`; actuate it.
    fn on_allocation(&mut self, at_secs: f64, allocation: &Allocation);

    /// Measures one inference of `app` at its current operating point,
    /// or `None` to keep the analytic prediction for this sample
    /// (unknown app, measurement unavailable).
    fn measure(&mut self, app: &str, predicted: TimeSpan) -> Option<TimeSpan>;

    /// A scenario [`Action::Chaos`] event fired at `at_secs`: inject
    /// the fault into the serving layer. Default: ignore (backends
    /// without a fault surface need not care).
    fn on_chaos(&mut self, _at_secs: f64, _app: &str, _fault: &ChaosFault) {}

    /// A scenario [`Action::Arrive`] event fired at `at_secs`: the app
    /// is about to join the allocation set. A serving backend registers
    /// the app here so the allocation that follows in the same step
    /// finds it live. Default: ignore. [`Action::Update`] events do
    /// *not* re-fire this hook — the app is already registered and its
    /// serving-side identity (model, deadline) is fixed at registration.
    fn on_arrive(&mut self, _at_secs: f64, _spec: &AppSpec) {}

    /// A scenario [`Action::Depart`] event fired at `at_secs`: the app
    /// is leaving. A serving backend deregisters it here (draining its
    /// queue and settling in-flight work) before the re-allocation that
    /// follows redistributes its band. Default: ignore.
    fn on_depart(&mut self, _at_secs: f64, _app: &str) {}
}

/// The simulator.
#[derive(Debug)]
pub struct Simulator {
    soc: Soc,
    cfg: SimConfig,
    events: Vec<ScenarioEvent>,
}

impl Simulator {
    /// Creates a simulator for `soc` with the given scenario events.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidScenario`] if events are not in
    /// non-decreasing time order, fire after the configured duration, or
    /// the step size is non-positive.
    pub fn new(soc: Soc, events: Vec<ScenarioEvent>, cfg: SimConfig) -> Result<Self> {
        if cfg.dt.as_secs() <= 0.0 {
            return Err(SimError::InvalidScenario {
                reason: "step size must be positive".into(),
            });
        }
        for pair in events.windows(2) {
            if pair[1].at_secs < pair[0].at_secs {
                return Err(SimError::InvalidScenario {
                    reason: format!(
                        "events out of order: {} s after {} s",
                        pair[1].at_secs, pair[0].at_secs
                    ),
                });
            }
        }
        if let Some(last) = events.last() {
            if last.at_secs > cfg.duration.as_secs() {
                return Err(SimError::InvalidScenario {
                    reason: format!(
                        "event at {} s is beyond the {} s duration",
                        last.at_secs,
                        cfg.duration.as_secs()
                    ),
                });
            }
        }
        Ok(Self { soc, cfg, events })
    }

    /// The simulated SoC.
    pub fn soc(&self) -> &Soc {
        &self.soc
    }

    fn throttle_cfg(&self, throttled: bool) -> RtmConfig {
        if throttled {
            RtmConfig {
                power_cap: Some(self.soc.thermal().sustainable_power() * self.cfg.thermal_backoff),
                ..self.cfg.rtm
            }
        } else {
            self.cfg.rtm
        }
    }

    /// Runs the simulation to completion and returns the trace.
    ///
    /// # Errors
    ///
    /// Propagates RTM errors (structural only; infeasibility is recorded in
    /// the trace, not raised).
    pub fn run(&self) -> Result<Trace> {
        self.run_impl(None)
    }

    /// Runs the scenario in *executed mode*: every allocation decision
    /// is actuated on `backend` and every sampled per-app latency is
    /// the backend's **measured** value (falling back to the analytic
    /// prediction only where the backend returns `None`). The
    /// requirement check of each sample (`met`) is re-evaluated against
    /// the measured latency, so a trace from this mode reports what the
    /// real kernels delivered, not what the model promised.
    ///
    /// Power/thermal stay analytic — the backend measures time, not
    /// watts.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_executed(&self, backend: &mut dyn ExecutionBackend) -> Result<Trace> {
        self.run_impl(Some(backend))
    }

    fn run_impl(&self, mut backend: Option<&mut dyn ExecutionBackend>) -> Result<Trace> {
        let mut trace = Trace::default();
        let mut apps: Vec<AppSpec> = Vec::new();
        let mut allocation: Option<Allocation> = None;
        let mut thermal = ThermalState::at_ambient(self.soc.thermal());
        let mut throttled = false;
        let mut next_event = 0usize;
        let mut time = 0.0f64;
        let mut since_sample = f64::INFINITY; // sample at t = 0

        let steps = (self.cfg.duration.as_secs() / self.cfg.dt.as_secs()).round() as usize;
        for _ in 0..=steps {
            // 1. Scenario events due at this time.
            let mut reasons: Vec<DecisionReason> = Vec::new();
            while next_event < self.events.len() && self.events[next_event].at_secs <= time + 1e-9 {
                let ev = &self.events[next_event];
                match &ev.action {
                    Action::Arrive(spec) => {
                        apps.retain(|a| a.name() != spec.name());
                        apps.push(spec.clone());
                        if let Some(backend) = backend.as_deref_mut() {
                            backend.on_arrive(time, spec);
                        }
                        reasons.push(DecisionReason::AppArrived(spec.name().to_string()));
                    }
                    Action::Depart(name) => {
                        apps.retain(|a| a.name() != name);
                        if let Some(backend) = backend.as_deref_mut() {
                            backend.on_depart(time, name);
                        }
                        reasons.push(DecisionReason::AppDeparted(name.clone()));
                    }
                    Action::Update(spec) => {
                        apps.retain(|a| a.name() != spec.name());
                        apps.push(spec.clone());
                        reasons.push(DecisionReason::RequirementChange(spec.name().to_string()));
                    }
                    Action::Chaos { app, fault } => {
                        // Deliberately reason-free: chaos must not
                        // trigger a re-allocation (the serving layer
                        // absorbs it between epochs).
                        if let Some(backend) = backend.as_deref_mut() {
                            backend.on_chaos(time, app, fault);
                        }
                    }
                }
                next_event += 1;
            }

            // 2. Thermal governor transitions (reactive policy; also the
            // safety net under the proactive policy, where it should never
            // fire).
            let limit = self.soc.thermal().limit.as_celsius();
            let temp = thermal.die_temp().as_celsius();
            if !throttled && temp > limit {
                throttled = true;
                reasons.push(DecisionReason::ThermalViolation);
            } else if self.cfg.thermal_policy == ThermalPolicy::Reactive
                && throttled
                && temp < limit - self.cfg.thermal_hysteresis
            {
                throttled = false;
                reasons.push(DecisionReason::ThermalRecovered);
            }

            // 3. Re-allocate if anything happened. Under the proactive
            // policy, an unthrottled allocation whose steady-state
            // temperature would exceed the limit is redone with the
            // throttled cap before it ever runs.
            let mut had_decision = !reasons.is_empty();
            if !reasons.is_empty() {
                let mut alloc =
                    Rtm::new(self.throttle_cfg(throttled)).allocate(&self.soc, &apps)?;
                if self.cfg.thermal_policy == ThermalPolicy::Proactive {
                    let predicted = self
                        .soc
                        .thermal()
                        .steady_state(effective_power(&self.soc, &alloc, &apps));
                    if !throttled && predicted > self.soc.thermal().limit {
                        throttled = true;
                        reasons.push(DecisionReason::ProactiveThrottle);
                        alloc = Rtm::new(self.throttle_cfg(true)).allocate(&self.soc, &apps)?;
                    } else if throttled {
                        // Would the unthrottled allocation now be safe?
                        let candidate =
                            Rtm::new(self.throttle_cfg(false)).allocate(&self.soc, &apps)?;
                        let p = effective_power(&self.soc, &candidate, &apps);
                        if self.soc.thermal().steady_state(p) <= self.soc.thermal().limit {
                            throttled = false;
                            alloc = candidate;
                        }
                    }
                }
                for reason in reasons {
                    trace.decisions.push(Decision {
                        at_secs: time,
                        reason,
                        allocation: alloc.to_string(),
                        commands: commands_for(&alloc),
                    });
                }
                if let Some(backend) = backend.as_deref_mut() {
                    backend.on_allocation(time, &alloc);
                }
                allocation = Some(alloc);
                had_decision = true;
            }

            // 4. Power for this step.
            let power = allocation
                .as_ref()
                .map(|a| effective_power(&self.soc, a, &apps))
                .unwrap_or_else(|| self.soc.idle_power());

            // 5. Sampling, *before* the thermal step: the sample reflects
            // the state at time `t`, including the over-limit temperature
            // that triggered a violation. Decision steps always sample.
            since_sample += self.cfg.dt.as_secs();
            if had_decision {
                since_sample = f64::INFINITY;
            }
            if since_sample + 1e-9 >= self.cfg.sample_every.as_secs() {
                since_sample = 0.0;
                let mut app_rows = allocation.as_ref().map(app_samples).unwrap_or_default();
                if let (Some(backend), Some(alloc)) = (backend.as_deref_mut(), allocation.as_ref())
                {
                    apply_measured(backend, alloc, &apps, &mut app_rows);
                }
                trace.samples.push(Sample {
                    at_secs: time,
                    power,
                    temp: thermal.die_temp(),
                    throttled,
                    apps: app_rows,
                });
            }

            // 6. Thermal update.
            thermal.step(self.soc.thermal(), power, self.cfg.dt);

            time += self.cfg.dt.as_secs();
        }
        Ok(trace)
    }
}

/// Average SoC power of an allocation with per-DNN duty cycling: a DNN that
/// beats its deadline idles until the next frame, so its cluster's dynamic
/// power is scaled by `latency / period`.
fn effective_power(soc: &Soc, alloc: &Allocation, apps: &[AppSpec]) -> Power {
    let mut total = soc.idle_power();
    for r in &alloc.rigid {
        total += r.power;
    }
    for d in &alloc.dnns {
        let spec = apps.iter().find_map(|a| match a {
            AppSpec::Dnn(s) if s.name == d.app => Some(s),
            _ => None,
        });
        let period = spec
            .and_then(|s| s.requirements.max_latency())
            .map(|budget| budget.as_secs().max(d.point.latency.as_secs()))
            .unwrap_or(d.point.latency.as_secs());
        let duty = if period > 0.0 {
            (d.point.latency.as_secs() / period).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let cluster = soc
            .cluster(d.point.op.cluster)
            .expect("allocation ids valid");
        let idle = cluster.power_model().idle_power();
        // Busy power of this app's share of the cluster, over the idle
        // floor already counted, weighted by duty. Shared accelerators
        // split the busy power among sharers (round-robin: each runs
        // 1/sharers of the time).
        let busy_over_idle = (d.point.power - idle) / d.sharers as f64;
        total += busy_over_idle * duty;
    }
    total
}

/// Executed mode: replaces each placed DNN's sampled latency with the
/// backend's measured value and re-checks its requirements against the
/// measurement.
fn apply_measured(
    backend: &mut dyn ExecutionBackend,
    alloc: &Allocation,
    apps: &[AppSpec],
    rows: &mut [AppSample],
) {
    for d in &alloc.dnns {
        let Some(measured) = backend.measure(&d.app, d.point.latency) else {
            continue;
        };
        let Some(row) = rows.iter_mut().find(|r| r.app == d.app) else {
            continue;
        };
        row.latency_ms = measured.as_millis();
        let spec = apps.iter().find_map(|a| match a {
            AppSpec::Dnn(s) if s.name == d.app => Some(s),
            _ => None,
        });
        if let Some(spec) = spec {
            let mut hyp = d.point;
            hyp.latency = measured;
            row.met = spec.requirements.violations(&hyp).is_empty();
        }
    }
}

fn app_samples(alloc: &Allocation) -> Vec<AppSample> {
    let mut out = Vec::with_capacity(alloc.dnns.len() + alloc.rigid.len());
    for r in &alloc.rigid {
        out.push(AppSample {
            app: r.app.clone(),
            cluster: r.cluster_name.clone(),
            freq_mhz: 0.0,
            cores: 0,
            level: usize::MAX,
            latency_ms: 0.0,
            met: true,
        });
    }
    for d in &alloc.dnns {
        out.push(AppSample {
            app: d.app.clone(),
            cluster: d.cluster_name.clone(),
            freq_mhz: d.freq.as_mhz(),
            cores: d.point.op.cores,
            level: d.point.op.level.index(),
            latency_ms: d.point.latency.as_millis(),
            met: d.violations.is_empty(),
        });
    }
    for name in &alloc.unplaced {
        out.push(AppSample {
            app: name.clone(),
            cluster: String::new(),
            freq_mhz: 0.0,
            cores: 0,
            level: usize::MAX,
            latency_ms: 0.0,
            met: false,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eml_core::requirements::Requirements;
    use eml_core::rtm::DnnAppSpec;
    use eml_dnn::profile::DnnProfile;
    use eml_platform::presets;

    fn dnn_app(name: &str, latency_ms: f64) -> AppSpec {
        AppSpec::Dnn(DnnAppSpec {
            name: name.into(),
            profile: DnnProfile::reference(name),
            requirements: Requirements::new().with_max_latency(TimeSpan::from_millis(latency_ms)),
            priority: 1,
            objective: None,
        })
    }

    fn quick_cfg(duration_s: f64) -> SimConfig {
        SimConfig {
            duration: TimeSpan::from_secs(duration_s),
            ..SimConfig::default()
        }
    }

    #[test]
    fn rejects_bad_scenarios() {
        let soc = presets::flagship();
        let out_of_order = vec![
            ScenarioEvent {
                at_secs: 5.0,
                action: Action::Depart("a".into()),
            },
            ScenarioEvent {
                at_secs: 1.0,
                action: Action::Depart("b".into()),
            },
        ];
        assert!(Simulator::new(soc.clone(), out_of_order, quick_cfg(10.0)).is_err());
        let too_late = vec![ScenarioEvent {
            at_secs: 99.0,
            action: Action::Depart("a".into()),
        }];
        assert!(Simulator::new(soc.clone(), too_late, quick_cfg(10.0)).is_err());
        let bad_dt = SimConfig {
            dt: TimeSpan::ZERO,
            ..quick_cfg(10.0)
        };
        assert!(Simulator::new(soc, vec![], bad_dt).is_err());
    }

    #[test]
    fn idle_simulation_stays_at_ambient() {
        let soc = presets::flagship();
        let ambient = soc.thermal().ambient;
        let sim = Simulator::new(soc, vec![], quick_cfg(5.0)).unwrap();
        let trace = sim.run().unwrap();
        assert!(!trace.samples.is_empty());
        let last = trace.samples.last().unwrap();
        // Idle power heats the die a little, but nowhere near the limit.
        assert!(last.temp.as_celsius() < ambient.as_celsius() + 10.0);
        assert!(trace.decisions.is_empty());
    }

    #[test]
    fn arrival_triggers_decision_and_power_rise() {
        let soc = presets::flagship();
        let events = vec![ScenarioEvent {
            at_secs: 1.0,
            action: Action::Arrive(dnn_app("dnn1", 11.0)),
        }];
        let sim = Simulator::new(soc, events, quick_cfg(5.0)).unwrap();
        let trace = sim.run().unwrap();
        assert_eq!(trace.decisions.len(), 1);
        assert!(matches!(
            trace.decisions[0].reason,
            DecisionReason::AppArrived(_)
        ));
        assert!((trace.decisions[0].at_secs - 1.0).abs() < 0.1);
        // Power after arrival exceeds idle power before it.
        let before = trace.samples.iter().find(|s| s.at_secs < 0.9).unwrap();
        let after = trace.samples.iter().find(|s| s.at_secs > 2.0).unwrap();
        assert!(after.power > before.power);
        assert_eq!(after.apps.len(), 1);
        assert_eq!(after.apps[0].cluster, "npu");
    }

    #[test]
    fn departure_returns_to_idle() {
        let soc = presets::flagship();
        let idle = soc.idle_power();
        let events = vec![
            ScenarioEvent {
                at_secs: 0.0,
                action: Action::Arrive(dnn_app("dnn1", 11.0)),
            },
            ScenarioEvent {
                at_secs: 2.0,
                action: Action::Depart("dnn1".into()),
            },
        ];
        let sim = Simulator::new(soc, events, quick_cfg(5.0)).unwrap();
        let trace = sim.run().unwrap();
        let last = trace.samples.last().unwrap();
        assert!(last.apps.is_empty());
        assert!((last.power.as_watts() - idle.as_watts()).abs() < 1e-9);
    }

    #[test]
    fn duty_cycling_reduces_power_below_always_busy() {
        // A DNN with lots of slack (loose deadline) must draw less average
        // power than the allocation's busy power.
        let soc = presets::flagship();
        let events = vec![ScenarioEvent {
            at_secs: 0.0,
            action: Action::Arrive(dnn_app("lazy", 1000.0)),
        }];
        let sim = Simulator::new(soc.clone(), events, quick_cfg(3.0)).unwrap();
        let trace = sim.run().unwrap();
        let s = trace.samples.last().unwrap();
        // NPU busy power is ≥ 0.5 W; with ~0.3% duty the average must sit
        // just above idle.
        assert!(s.power.as_watts() < soc.idle_power().as_watts() + 0.1);
    }

    #[test]
    fn trace_sampling_interval_respected() {
        let soc = presets::flagship();
        let cfg = SimConfig {
            duration: TimeSpan::from_secs(2.0),
            sample_every: TimeSpan::from_millis(500.0),
            ..SimConfig::default()
        };
        let sim = Simulator::new(soc, vec![], cfg).unwrap();
        let trace = sim.run().unwrap();
        // 0.0, 0.5, 1.0, 1.5, 2.0 → 5 samples.
        assert_eq!(trace.samples.len(), 5);
    }

    /// Executed mode with a canned backend: allocations are actuated,
    /// sampled latencies are the *measured* values, and `met` is
    /// re-judged against the measurement — an analytically feasible
    /// point whose measured latency blows the budget must sample as a
    /// miss.
    #[test]
    fn executed_mode_reports_measured_latency_and_rejudges_met() {
        struct Canned {
            allocations: usize,
            measured_ms: f64,
        }
        impl ExecutionBackend for Canned {
            fn on_allocation(&mut self, _at: f64, allocation: &Allocation) {
                assert!(!allocation.dnns.is_empty() || !allocation.rigid.is_empty());
                self.allocations += 1;
            }
            fn measure(&mut self, app: &str, _predicted: TimeSpan) -> Option<TimeSpan> {
                assert_eq!(app, "dnn1");
                Some(TimeSpan::from_millis(self.measured_ms))
            }
        }
        let events = || {
            vec![ScenarioEvent {
                at_secs: 0.0,
                action: Action::Arrive(dnn_app("dnn1", 11.0)),
            }]
        };
        let soc = presets::flagship();
        let sim = Simulator::new(soc, events(), quick_cfg(2.0)).unwrap();

        // Fast reality: measured 5 ms under an 11 ms budget → met.
        let mut fast = Canned {
            allocations: 0,
            measured_ms: 5.0,
        };
        let trace = sim.run_executed(&mut fast).unwrap();
        assert_eq!(fast.allocations, 1, "one arrival, one actuation");
        let app = trace.app_at(1.0, "dnn1").unwrap();
        assert!((app.latency_ms - 5.0).abs() < 1e-9, "{app:?}");
        assert!(app.met);

        // Slow reality: the same analytic decision measures 50 ms → the
        // sample reports the miss the model would have hidden.
        let mut slow = Canned {
            allocations: 0,
            measured_ms: 50.0,
        };
        let trace = sim.run_executed(&mut slow).unwrap();
        let app = trace.app_at(1.0, "dnn1").unwrap();
        assert!((app.latency_ms - 50.0).abs() < 1e-9, "{app:?}");
        assert!(!app.met, "measured miss must override the analytic met");
    }

    /// Chaos events reach the backend with their scheduled time and
    /// payload, never trigger a re-allocation, and are ignored by
    /// analytic runs (no backend).
    #[test]
    fn chaos_events_reach_the_backend_without_reallocating() {
        #[derive(Default)]
        struct Recorder {
            allocations: usize,
            chaos: Vec<(f64, String, ChaosFault)>,
        }
        impl ExecutionBackend for Recorder {
            fn on_allocation(&mut self, _at: f64, _allocation: &Allocation) {
                self.allocations += 1;
            }
            fn measure(&mut self, _app: &str, _predicted: TimeSpan) -> Option<TimeSpan> {
                None
            }
            fn on_chaos(&mut self, at_secs: f64, app: &str, fault: &ChaosFault) {
                self.chaos.push((at_secs, app.to_string(), fault.clone()));
            }
        }
        let events = vec![
            ScenarioEvent {
                at_secs: 0.0,
                action: Action::Arrive(dnn_app("dnn1", 11.0)),
            },
            ScenarioEvent {
                at_secs: 1.0,
                action: Action::Chaos {
                    app: "dnn1".into(),
                    fault: ChaosFault::PanicForward,
                },
            },
            ScenarioEvent {
                at_secs: 1.5,
                action: Action::Chaos {
                    app: "dnn1".into(),
                    fault: ChaosFault::QueueStorm(4),
                },
            },
        ];
        let soc = presets::flagship();
        let sim = Simulator::new(soc, events.clone(), quick_cfg(2.0)).unwrap();
        let mut rec = Recorder::default();
        let trace = sim.run_executed(&mut rec).unwrap();
        assert_eq!(rec.allocations, 1, "chaos is not a decision trigger");
        assert_eq!(trace.decisions.len(), 1);
        assert_eq!(rec.chaos.len(), 2);
        assert_eq!(rec.chaos[0].1, "dnn1");
        assert_eq!(rec.chaos[0].2, ChaosFault::PanicForward);
        assert!((rec.chaos[0].0 - 1.0).abs() < 0.05 + 1e-9);
        assert_eq!(rec.chaos[1].2, ChaosFault::QueueStorm(4));
        // An analytic run of the same scenario simply skips the chaos.
        let soc = presets::flagship();
        let sim = Simulator::new(soc, events, quick_cfg(2.0)).unwrap();
        let trace = sim.run().unwrap();
        assert_eq!(trace.decisions.len(), 1);
    }

    #[test]
    fn update_event_changes_requirements() {
        let soc = presets::flagship();
        let mut relaxed = dnn_app("dnn1", 11.0);
        if let AppSpec::Dnn(d) = &mut relaxed {
            d.requirements = Requirements::new().with_max_latency(TimeSpan::from_millis(200.0));
        }
        let events = vec![
            ScenarioEvent {
                at_secs: 0.0,
                action: Action::Arrive(dnn_app("dnn1", 11.0)),
            },
            ScenarioEvent {
                at_secs: 1.0,
                action: Action::Update(relaxed),
            },
        ];
        let sim = Simulator::new(soc, events, quick_cfg(3.0)).unwrap();
        let trace = sim.run().unwrap();
        assert_eq!(trace.decisions.len(), 2);
        assert!(matches!(
            trace.decisions[1].reason,
            DecisionReason::RequirementChange(_)
        ));
    }
}
