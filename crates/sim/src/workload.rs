//! Deterministic synthetic workload engine.
//!
//! Scenario files capture *one* storyline; robustness work needs
//! *families* of them. This module generates full scenario event
//! schedules — arrivals with heavy-tailed model sizes and deadline
//! mixes, diurnal arrival clumping, rigid co-tenant interference,
//! flash crowds, app churn (depart → re-arrive cycles) and chaos
//! sprinkles — from a single `u64` seed. The same seed always yields
//! the byte-identical schedule (the generator draws only from a seeded
//! [`rand::rngs::StdRng`]; no wall clock, no global state), and every
//! schedule carries its own FNV-1a digest over a canonical text
//! rendering so two runs can assert they replayed the *same* workload
//! before comparing outcome digests.
//!
//! The shapes are deliberately adversarial for a serving layer:
//!
//! - **Diurnal curve** — arrival times are warped by a sine term so
//!   tenants clump into a "morning rush" instead of spreading evenly.
//! - **Heavy tails** — model scale and deadline both come from
//!   bounded Pareto draws (a few huge models / fat deadlines amid many
//!   small ones), the mix that makes naive average-case batching and
//!   admission tuning fail.
//! - **Hot app** — one tight-deadline tenant, excluded from churn, is
//!   hit with a burst of latency-spike faults mid-run: the
//!   deterministic trigger for a health-score degrade (and, once the
//!   spikes pass, a restore).
//! - **Flash crowd** — queue storms aimed only at fat-deadline apps
//!   (tight-deadline tenants shed expired work too fast to pressure
//!   queues meaningfully).
//! - **Churn** — depart → re-arrive cycles over the mid-run window
//!   exercise the executor's deregistration path while load is live.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eml_core::objective::Objective;
use eml_core::requirements::Requirements;
use eml_core::rtm::{AppSpec, DnnAppSpec, RigidAppSpec};
use eml_platform::soc::CoreKind;
use eml_platform::units::TimeSpan;

use crate::scenario::scaled_reference_profile;
use crate::simulator::{Action, ChaosFault, ScenarioEvent};

/// Parameters of a generated workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Master seed; every schedule detail derives from it.
    pub seed: u64,
    /// Number of dynamic-DNN tenants (the hot app, when enabled, is
    /// one of them).
    pub dnn_apps: usize,
    /// Number of rigid co-tenants competing for clusters (interference).
    pub rigid_apps: usize,
    /// Scenario duration in seconds; all events land inside it.
    pub duration_secs: f64,
    /// Depart → re-arrive churn cycles over the mid-run window.
    pub churn_cycles: usize,
    /// Queue-storm count of the flash crowd (0 disables it). Storms
    /// target only apps with deadlines ≥ 200 ms.
    pub flash_crowd_storms: usize,
    /// Synthetic requests injected per flash-crowd storm.
    pub storm_size: usize,
    /// Random chaos sprinkles (forward panics, thread crashes, knob
    /// failures) over the mid-run window.
    pub chaos_sprinkles: usize,
    /// Generate the hot tight-deadline app plus its latency-spike
    /// burst (the deterministic degrade/restore trigger).
    pub hot_app: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            seed: 0x05EED,
            dnn_apps: 20,
            rigid_apps: 2,
            duration_secs: 60.0,
            churn_cycles: 5,
            flash_crowd_storms: 4,
            storm_size: 3,
            chaos_sprinkles: 4,
            hot_app: true,
        }
    }
}

/// Name of the generated hot app (tight deadline, spike target,
/// churn-exempt).
pub const HOT_APP: &str = "gen-hot";

/// A generated scenario schedule plus its provenance.
#[derive(Debug, Clone)]
pub struct GeneratedWorkload {
    /// The events, time-ordered, ready for [`crate::Simulator::new`].
    pub events: Vec<ScenarioEvent>,
    /// Canonical text rendering of the schedule (one line per event).
    pub canonical: String,
    /// FNV-1a 64-bit digest of [`GeneratedWorkload::canonical`].
    pub digest: u64,
    /// The hot app's name, when one was generated.
    pub hot_app: Option<String>,
    /// Depart → re-arrive cycles actually scheduled (≤ requested:
    /// bounded by eligible tenants).
    pub churn_cycles: usize,
    /// Dynamic-DNN tenants in the schedule.
    pub dnn_apps: usize,
    /// Queue storms in the flash crowd actually scheduled.
    pub flash_storms: usize,
}

/// FNV-1a 64-bit digest — the workspace's standard cheap fingerprint
/// for canonical text (offline, dependency-free, stable across
/// platforms).
pub fn fnv1a64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Bounded Pareto draw via inverse-transform sampling: `min / u^(1/α)`
/// clamped to `max`. Small α → heavier tail.
fn pareto(rng: &mut StdRng, min: f64, alpha: f64, max: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0001..1.0);
    (min / u.powf(1.0 / alpha)).min(max)
}

/// Warps a uniform position `u ∈ [0, 1)` into a diurnal-clumped one:
/// monotone (derivative ≥ 1 − 0.15·2π > 0), so event order by draw
/// order is preserved while density peaks mid-window.
fn diurnal_warp(u: f64) -> f64 {
    (u - 0.15 * (std::f64::consts::TAU * u).sin()).clamp(0.0, 1.0)
}

struct Tenant {
    name: String,
    scale: f64,
    deadline_ms: f64,
    priority: u8,
    arrive_at: f64,
}

impl Tenant {
    fn spec(&self) -> AppSpec {
        AppSpec::Dnn(DnnAppSpec {
            name: self.name.clone(),
            profile: scaled_reference_profile(&self.name, self.scale),
            requirements: Requirements::new()
                .with_max_latency(TimeSpan::from_millis(self.deadline_ms)),
            priority: self.priority,
            objective: Some(Objective::MinLatency),
        })
    }
}

/// One raw event with a canonical line and a tiebreaking sequence
/// number, before time-sorting.
struct Raw {
    at: f64,
    seq: usize,
    line: String,
    action: Action,
}

/// Generates the schedule for `cfg`. Same config (including seed) →
/// byte-identical [`GeneratedWorkload::canonical`] and equal
/// [`GeneratedWorkload::digest`].
pub fn generate(cfg: &WorkloadConfig) -> GeneratedWorkload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let dur = cfg.duration_secs.max(1.0);
    let mut raw: Vec<Raw> = Vec::new();
    let mut seq = 0usize;
    let mut push = |raw: &mut Vec<Raw>, at: f64, line: String, action: Action| {
        raw.push(Raw {
            at,
            seq,
            line,
            action,
        });
        seq += 1;
    };

    // --- Dynamic tenants: diurnal arrivals, Pareto scales/deadlines.
    let arrival_window = 0.45 * dur;
    let mut tenants: Vec<Tenant> = Vec::new();
    for i in 0..cfg.dnn_apps {
        let hot = cfg.hot_app && i == 0;
        let name = if hot {
            HOT_APP.to_string()
        } else {
            format!("gen-{i:02}")
        };
        let arrive_at = if hot {
            0.0
        } else {
            let u: f64 = rng.gen_range(0.0..1.0);
            (diurnal_warp(u) * arrival_window * 1e3).round() / 1e3
        };
        // Scale: Pareto(0.5, α=2.2) capped at 6× — most tenants light,
        // a few heavy. Deadline: Pareto(40 ms, α=1.4) capped at 2 s —
        // a fat-tailed deadline mix (the hot app is pinned tight).
        let scale = if hot {
            1.0
        } else {
            (pareto(&mut rng, 0.5, 2.2, 6.0) * 1e3).round() / 1e3
        };
        let deadline_ms = if hot {
            150.0
        } else {
            (pareto(&mut rng, 40.0, 1.4, 2000.0) * 10.0).round() / 10.0
        };
        let priority = if hot { 1 } else { rng.gen_range(1u8..=5) };
        tenants.push(Tenant {
            name,
            scale,
            deadline_ms,
            priority,
            arrive_at,
        });
    }
    for t in &tenants {
        push(
            &mut raw,
            t.arrive_at,
            format!(
                "{:.3} arrive {} scale={:.3} deadline_ms={:.1} prio={}",
                t.arrive_at, t.name, t.scale, t.deadline_ms, t.priority
            ),
            Action::Arrive(t.spec()),
        );
    }

    // --- Rigid co-tenants: cluster-claiming interference.
    for i in 0..cfg.rigid_apps {
        let name = format!("rigid-{i}");
        let at = (rng.gen_range(0.0..0.3 * dur) * 1e3).round() / 1e3;
        let preferred = if i % 2 == 0 {
            CoreKind::Gpu
        } else {
            CoreKind::BigCpu
        };
        let utilization = (rng.gen_range(0.4..0.95f64) * 1e3).round() / 1e3;
        push(
            &mut raw,
            at,
            format!("{at:.3} arrive-rigid {name} kind={preferred:?} util={utilization:.3}"),
            Action::Arrive(AppSpec::Rigid(RigidAppSpec {
                name,
                preferred: vec![preferred],
                utilization,
                priority: 6,
            })),
        );
    }

    // --- Churn: depart → re-arrive over the mid-run window, hot app
    // exempt, each cycle on a distinct tenant.
    let mut eligible: Vec<usize> = tenants
        .iter()
        .enumerate()
        .filter(|(_, t)| t.name != HOT_APP)
        .map(|(i, _)| i)
        .collect();
    let cycles = cfg.churn_cycles.min(eligible.len());
    let churn_lo = 0.50 * dur;
    let churn_hi = 0.85 * dur;
    for c in 0..cycles {
        let pick = rng.gen_range(0..eligible.len());
        let idx = eligible.swap_remove(pick);
        let t = &tenants[idx];
        let base = churn_lo + (churn_hi - churn_lo) * (c as f64 / cycles as f64);
        let depart_at = ((base + rng.gen_range(0.0..(churn_hi - churn_lo) / cycles as f64)) * 1e3)
            .round()
            / 1e3;
        let rearrive_at = ((depart_at + rng.gen_range(0.8..2.0f64)).min(dur) * 1e3).round() / 1e3;
        push(
            &mut raw,
            depart_at,
            format!("{:.3} depart {}", depart_at, t.name),
            Action::Depart(t.name.clone()),
        );
        push(
            &mut raw,
            rearrive_at,
            format!(
                "{:.3} arrive {} scale={:.3} deadline_ms={:.1} prio={}",
                rearrive_at, t.name, t.scale, t.deadline_ms, t.priority
            ),
            Action::Arrive(t.spec()),
        );
    }

    // --- Flash crowd: a tight burst of queue storms on fat-deadline
    // tenants only (tight deadlines shed expired work before it can
    // pressure the queue).
    let crowd_at = (0.62 * dur * 1e3).round() / 1e3;
    let fat: Vec<&Tenant> = tenants.iter().filter(|t| t.deadline_ms >= 200.0).collect();
    let mut flash_storms = 0usize;
    if !fat.is_empty() {
        for s in 0..cfg.flash_crowd_storms {
            let t = fat[rng.gen_range(0..fat.len())];
            let at = ((crowd_at + s as f64 * 0.15) * 1e3).round() / 1e3;
            push(
                &mut raw,
                at,
                format!("{:.3} chaos {} storm n={}", at, t.name, cfg.storm_size),
                Action::Chaos {
                    app: t.name.clone(),
                    fault: ChaosFault::QueueStorm(cfg.storm_size),
                },
            );
            flash_storms += 1;
        }
    }

    // --- Hot-app spike burst: four consecutive latency spikes at
    // 2.5× the deadline, mid-run — enough consecutive misses to pull
    // the windowed miss rate (and so the health score) down hard.
    if cfg.hot_app && !tenants.is_empty() {
        let spike = TimeSpan::from_millis(2.5 * 150.0);
        for s in 0..4usize {
            let at = ((0.30 * dur + s as f64 * 0.8) * 1e3).round() / 1e3;
            push(
                &mut raw,
                at,
                format!(
                    "{:.3} chaos {} spike ms={:.1}",
                    at,
                    HOT_APP,
                    spike.as_millis()
                ),
                Action::Chaos {
                    app: HOT_APP.into(),
                    fault: ChaosFault::LatencySpike(spike),
                },
            );
        }
    }

    // --- Chaos sprinkles: mid-run panics / crashes / knob failures on
    // random tenants (may land while the target is departed; replaying
    // backends treat that as a no-op, and the schedule stays identical
    // either way).
    for _ in 0..cfg.chaos_sprinkles {
        let t = &tenants[rng.gen_range(0..tenants.len())];
        let at = (rng.gen_range(0.3 * dur..0.9 * dur) * 1e3).round() / 1e3;
        let (label, fault) = match rng.gen_range(0u32..3) {
            0 => ("panic", ChaosFault::PanicForward),
            1 => ("crash", ChaosFault::CrashThread),
            _ => ("knob-fail", ChaosFault::KnobFailure),
        };
        push(
            &mut raw,
            at,
            format!("{:.3} chaos {} {}", at, t.name, label),
            Action::Chaos {
                app: t.name.clone(),
                fault,
            },
        );
    }

    // Time-order with the emission sequence as tiebreak (f64 times are
    // exact at millisecond granularity, so this sort is total and
    // deterministic).
    raw.sort_by(|a, b| {
        a.at.partial_cmp(&b.at)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.seq.cmp(&b.seq))
    });

    let mut canonical = String::new();
    let mut events = Vec::with_capacity(raw.len());
    for r in raw {
        canonical.push_str(&r.line);
        canonical.push('\n');
        events.push(ScenarioEvent {
            at_secs: r.at,
            action: r.action,
        });
    }
    let digest = fnv1a64(&canonical);
    GeneratedWorkload {
        events,
        canonical,
        digest,
        hot_app: cfg.hot_app.then(|| HOT_APP.to_string()),
        churn_cycles: cycles,
        dnn_apps: cfg.dnn_apps,
        flash_storms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{SimConfig, Simulator};
    use eml_platform::presets;

    #[test]
    fn same_seed_same_schedule_bitwise() {
        let cfg = WorkloadConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.canonical, b.canonical);
        assert_eq!(a.digest, b.digest);
        let c = generate(&WorkloadConfig {
            seed: cfg.seed + 1,
            ..cfg
        });
        assert_ne!(a.digest, c.digest, "different seed must move the digest");
    }

    #[test]
    fn schedule_is_valid_and_covers_requested_shapes() {
        let cfg = WorkloadConfig::default();
        let w = generate(&cfg);
        assert_eq!(w.dnn_apps, 20);
        assert_eq!(w.churn_cycles, 5);
        assert!(w.flash_storms >= 1, "heavy deadline tail must exist");
        assert_eq!(w.hot_app.as_deref(), Some(HOT_APP));
        // Valid for the simulator: ordered, inside the duration.
        for pair in w.events.windows(2) {
            assert!(pair[0].at_secs <= pair[1].at_secs);
        }
        let departs = w
            .events
            .iter()
            .filter(|e| matches!(e.action, Action::Depart(_)))
            .count();
        assert_eq!(departs, 5);
        assert!(!w
            .events
            .iter()
            .any(|e| matches!(&e.action, Action::Depart(n) if n == HOT_APP)));
        let sim = Simulator::new(
            presets::flagship(),
            w.events,
            SimConfig {
                duration: eml_platform::units::TimeSpan::from_secs(cfg.duration_secs),
                ..SimConfig::default()
            },
        );
        assert!(sim.is_ok(), "generated schedule must pass validation");
    }

    #[test]
    fn analytic_run_of_generated_schedule_completes() {
        let cfg = WorkloadConfig {
            dnn_apps: 6,
            rigid_apps: 1,
            duration_secs: 12.0,
            churn_cycles: 2,
            ..WorkloadConfig::default()
        };
        let w = generate(&cfg);
        let sim = Simulator::new(
            presets::flagship(),
            w.events,
            SimConfig {
                duration: eml_platform::units::TimeSpan::from_secs(cfg.duration_secs),
                ..SimConfig::default()
            },
        )
        .unwrap();
        let trace = sim.run().unwrap();
        assert!(trace.summary().decisions >= 6 + 1 + 2 * 2);
    }

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64("foobar"), 0x85944171f73967e8);
    }
}
