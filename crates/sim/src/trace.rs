//! Simulation traces: periodic samples, RTM decisions, and violation
//! events, with CSV export for plotting.

use std::fmt;
use std::fmt::Write as _;

use eml_core::knobs::KnobCommand;
use eml_platform::units::{Celsius, Energy, Power, TimeSpan};

/// Per-application state captured in one sample.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSample {
    /// Application name.
    pub app: String,
    /// Cluster the app currently runs on (empty if unplaced).
    pub cluster: String,
    /// Cluster frequency in MHz.
    pub freq_mhz: f64,
    /// Cores in use.
    pub cores: u32,
    /// Dynamic-DNN width level index (`usize::MAX` for rigid apps).
    pub level: usize,
    /// Predicted per-inference latency in ms (0 for rigid apps).
    pub latency_ms: f64,
    /// Whether all requirements are currently met.
    pub met: bool,
}

/// One periodic sample of global state.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Simulation time in seconds.
    pub at_secs: f64,
    /// Average SoC power over the last interval.
    pub power: Power,
    /// Die temperature.
    pub temp: Celsius,
    /// Whether the thermal throttle is engaged.
    pub throttled: bool,
    /// Per-application state.
    pub apps: Vec<AppSample>,
}

/// Why the RTM was invoked.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecisionReason {
    /// An application arrived.
    AppArrived(String),
    /// An application departed.
    AppDeparted(String),
    /// An application's requirements changed.
    RequirementChange(String),
    /// The die exceeded the thermal limit.
    ThermalViolation,
    /// The die cooled below the hysteresis threshold.
    ThermalRecovered,
    /// The proactive governor predicted an unsustainable steady state and
    /// throttled before any violation occurred.
    ProactiveThrottle,
}

impl fmt::Display for DecisionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::AppArrived(a) => write!(f, "app `{a}` arrived"),
            Self::AppDeparted(a) => write!(f, "app `{a}` departed"),
            Self::RequirementChange(a) => write!(f, "requirements of `{a}` changed"),
            Self::ThermalViolation => write!(f, "thermal limit exceeded"),
            Self::ThermalRecovered => write!(f, "thermal recovery"),
            Self::ProactiveThrottle => {
                write!(f, "proactive throttle (predicted over-limit steady state)")
            }
        }
    }
}

/// One RTM decision record.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Simulation time in seconds.
    pub at_secs: f64,
    /// What triggered the decision.
    pub reason: DecisionReason,
    /// Human-readable allocation summary.
    pub allocation: String,
    /// The knob commands issued.
    pub commands: Vec<KnobCommand>,
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Total simulated time.
    pub duration: TimeSpan,
    /// Energy consumed over the run.
    pub total_energy: Energy,
    /// Peak die temperature.
    pub peak_temp: Celsius,
    /// Mean SoC power.
    pub mean_power: Power,
    /// Fraction of samples in which every app met its requirements.
    pub feasible_fraction: f64,
    /// Number of RTM decisions taken.
    pub decisions: usize,
    /// Number of thermal-violation events.
    pub thermal_violations: usize,
}

/// The full record of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Periodic samples, in time order.
    pub samples: Vec<Sample>,
    /// RTM decisions, in time order.
    pub decisions: Vec<Decision>,
}

impl Trace {
    /// Summarises the run.
    ///
    /// Energy integrates `power × dt` between consecutive samples.
    pub fn summary(&self) -> TraceSummary {
        let duration = self
            .samples
            .last()
            .map(|s| TimeSpan::from_secs(s.at_secs))
            .unwrap_or(TimeSpan::ZERO);
        let mut energy = Energy::ZERO;
        for pair in self.samples.windows(2) {
            let dt = TimeSpan::from_secs(pair[1].at_secs - pair[0].at_secs);
            energy += pair[1].power * dt;
        }
        let peak_temp = self
            .samples
            .iter()
            .map(|s| s.temp)
            .fold(Celsius::from_celsius(f64::NEG_INFINITY), Celsius::max);
        let mean_power = if duration.as_secs() > 0.0 {
            energy / duration
        } else {
            Power::ZERO
        };
        let feasible = self
            .samples
            .iter()
            .filter(|s| s.apps.iter().all(|a| a.met))
            .count();
        TraceSummary {
            duration,
            total_energy: energy,
            peak_temp,
            mean_power,
            feasible_fraction: if self.samples.is_empty() {
                1.0
            } else {
                feasible as f64 / self.samples.len() as f64
            },
            decisions: self.decisions.len(),
            thermal_violations: self
                .decisions
                .iter()
                .filter(|d| d.reason == DecisionReason::ThermalViolation)
                .count(),
        }
    }

    /// Renders the samples as CSV: one row per (sample, app).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "t_s,power_w,temp_c,throttled,app,cluster,freq_mhz,cores,level,latency_ms,met\n",
        );
        for s in &self.samples {
            if s.apps.is_empty() {
                let _ = writeln!(
                    out,
                    "{:.3},{:.3},{:.2},{},,,,,,,",
                    s.at_secs,
                    s.power.as_watts(),
                    s.temp.as_celsius(),
                    s.throttled
                );
            }
            for a in &s.apps {
                let _ = writeln!(
                    out,
                    "{:.3},{:.3},{:.2},{},{},{},{:.0},{},{},{:.2},{}",
                    s.at_secs,
                    s.power.as_watts(),
                    s.temp.as_celsius(),
                    s.throttled,
                    a.app,
                    a.cluster,
                    a.freq_mhz,
                    a.cores,
                    a.level,
                    a.latency_ms,
                    a.met
                );
            }
        }
        out
    }

    /// Renders the decision log as human-readable lines.
    pub fn decision_log(&self) -> String {
        let mut out = String::new();
        for d in &self.decisions {
            let _ = writeln!(out, "[{:7.2}s] {}", d.at_secs, d.reason);
            for line in d.allocation.lines() {
                let _ = writeln!(out, "            {line}");
            }
        }
        out
    }

    /// State of one application at a given time, from the nearest sample at
    /// or before `t`.
    pub fn app_at(&self, t: f64, app: &str) -> Option<&AppSample> {
        self.samples
            .iter()
            .rev()
            .find(|s| s.at_secs <= t + 1e-9)
            .and_then(|s| s.apps.iter().find(|a| a.app == app))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, p: f64, temp: f64, met: bool) -> Sample {
        Sample {
            at_secs: t,
            power: Power::from_watts(p),
            temp: Celsius::from_celsius(temp),
            throttled: false,
            apps: vec![AppSample {
                app: "a".into(),
                cluster: "npu".into(),
                freq_mhz: 960.0,
                cores: 1,
                level: 3,
                latency_ms: 2.5,
                met,
            }],
        }
    }

    #[test]
    fn summary_integrates_energy_and_tracks_peak() {
        let trace = Trace {
            samples: vec![sample(0.0, 2.0, 30.0, true), sample(1.0, 4.0, 50.0, false)],
            decisions: vec![],
        };
        let s = trace.summary();
        assert!((s.total_energy.as_joules() - 4.0).abs() < 1e-9);
        assert_eq!(s.peak_temp, Celsius::from_celsius(50.0));
        assert!((s.feasible_fraction - 0.5).abs() < 1e-9);
        assert_eq!(s.duration, TimeSpan::from_secs(1.0));
    }

    #[test]
    fn empty_trace_summary_is_zeroed() {
        let s = Trace::default().summary();
        assert_eq!(s.duration, TimeSpan::ZERO);
        assert_eq!(s.total_energy, Energy::ZERO);
        assert_eq!(s.decisions, 0);
        assert_eq!(s.feasible_fraction, 1.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let trace = Trace {
            samples: vec![sample(0.5, 1.0, 40.0, true)],
            decisions: vec![],
        };
        let csv = trace.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("t_s,power_w"));
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("npu"));
        assert!(lines[1].contains("0.500"));
    }

    #[test]
    fn app_at_finds_latest_sample() {
        let trace = Trace {
            samples: vec![sample(0.0, 1.0, 30.0, true), sample(2.0, 1.0, 30.0, false)],
            decisions: vec![],
        };
        assert!(trace.app_at(1.0, "a").unwrap().met);
        assert!(!trace.app_at(2.5, "a").unwrap().met);
        assert!(trace.app_at(1.0, "missing").is_none());
    }

    #[test]
    fn decision_reason_display() {
        assert_eq!(
            DecisionReason::AppArrived("x".into()).to_string(),
            "app `x` arrived"
        );
        assert_eq!(
            DecisionReason::ThermalViolation.to_string(),
            "thermal limit exceeded"
        );
    }
}
