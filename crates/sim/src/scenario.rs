//! Pre-built scenarios, foremost the paper's Fig 2 runtime storyline.

use eml_core::objective::Objective;
use eml_core::requirements::Requirements;
use eml_core::rtm::{AppSpec, DnnAppSpec, RigidAppSpec};
use eml_dnn::profile::{DnnProfile, LevelSpec};
use eml_platform::paper;
use eml_platform::presets;
use eml_platform::soc::CoreKind;
use eml_platform::units::TimeSpan;
use eml_platform::Soc;

use crate::simulator::{Action, ScenarioEvent, SimConfig, Simulator};

/// Names used by the Fig 2 scenario.
pub mod names {
    /// The always-on camera DNN (DNN 1 in the paper).
    pub const DNN1: &str = "dnn1";
    /// The heavier, latency-critical DNN (DNN 2).
    pub const DNN2: &str = "dnn2";
    /// The VR/AR application.
    pub const VRAR: &str = "vr-ar";
}

/// A dynamic-DNN profile whose workload is `scale ×` the paper's reference
/// CNN at every width (used for the heavier DNN 2).
pub fn scaled_reference_profile(name: &str, scale: f64) -> DnnProfile {
    let base = presets::reference_workload();
    let levels = paper::WIDTH_LEVELS
        .iter()
        .zip(paper::FIG4B_TOP1)
        .map(|(&frac, top1)| LevelSpec {
            cost_fraction: frac,
            workload: base.scaled(frac * scale),
            top1_percent: top1,
            param_bytes: base.param_bytes() * frac * scale,
        })
        .collect();
    DnnProfile::new(name, levels, base.param_bytes() * scale)
        .expect("scaled reference levels are valid")
}

/// DNN 1: the paper's always-on classifier, 90 fps-class latency budget.
pub fn dnn1() -> AppSpec {
    AppSpec::Dnn(DnnAppSpec {
        name: names::DNN1.into(),
        profile: DnnProfile::reference(names::DNN1),
        requirements: Requirements::new().with_max_latency(TimeSpan::from_millis(11.0)),
        priority: 1,
        objective: None,
    })
}

/// DNN 2: a 4× heavier detector with a 60 fps deadline — "higher
/// requirements on the desired classification execution time" (Fig 2b).
pub fn dnn2() -> AppSpec {
    AppSpec::Dnn(DnnAppSpec {
        name: names::DNN2.into(),
        profile: scaled_reference_profile(names::DNN2, 4.0),
        requirements: Requirements::new().with_target_fps(60.0),
        priority: 2,
        objective: None,
    })
}

/// DNN 2 after the t = 25 s requirement change: the user relaxes accuracy
/// to ≥ 55 % and prefers energy (Fig 2d).
pub fn dnn2_relaxed() -> AppSpec {
    AppSpec::Dnn(DnnAppSpec {
        name: names::DNN2.into(),
        profile: scaled_reference_profile(names::DNN2, 4.0),
        requirements: Requirements::new()
            .with_target_fps(60.0)
            .with_min_top1(55.0),
        priority: 2,
        objective: Some(Objective::MinEnergy),
    })
}

/// The VR/AR application: a rigid GPU renderer (Fig 2c).
pub fn vr_ar() -> AppSpec {
    AppSpec::Rigid(RigidAppSpec {
        name: names::VRAR.into(),
        preferred: vec![CoreKind::Gpu],
        utilization: 0.9,
        priority: 3,
    })
}

/// Builds the paper's Fig 2 scenario on the flagship SoC:
///
/// - **t = 0 s** — DNN 1 arrives (runs alone on the NPU);
/// - **t = 5 s** — DNN 2 arrives (takes the NPU; DNN 1 migrates to the GPU
///   and compresses);
/// - **t = 15 s** — VR/AR claims the GPU (DNN 1 moves to the big CPU
///   cluster); the die later exceeds its thermal limit and the reactive
///   governor throttles;
/// - **t = 25 s** — DNN 2's accuracy requirement is relaxed; it compresses
///   and both DNNs end up sharing the NPU, DNN 1 back at full width.
///
/// # Errors
///
/// Never fails for the built-in configuration; returns the simulator ready
/// to [`run`](Simulator::run).
pub fn fig2_scenario() -> crate::error::Result<Simulator> {
    fig2_scenario_with(SimConfig::default())
}

/// [`fig2_scenario`] with custom simulation parameters.
///
/// # Errors
///
/// Returns [`crate::SimError::InvalidScenario`] if `cfg` cannot accommodate
/// the 25 s event timeline.
pub fn fig2_scenario_with(cfg: SimConfig) -> crate::error::Result<Simulator> {
    let events = vec![
        ScenarioEvent {
            at_secs: 0.0,
            action: Action::Arrive(dnn1()),
        },
        ScenarioEvent {
            at_secs: 5.0,
            action: Action::Arrive(dnn2()),
        },
        ScenarioEvent {
            at_secs: 15.0,
            action: Action::Arrive(vr_ar()),
        },
        ScenarioEvent {
            at_secs: 25.0,
            action: Action::Update(dnn2_relaxed()),
        },
    ];
    Simulator::new(fig2_soc(), events, cfg)
}

/// The SoC the Fig 2 scenario runs on.
pub fn fig2_soc() -> Soc {
    presets::flagship()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::DecisionReason;

    /// End-to-end reproduction of the paper's Fig 2 storyline.
    #[test]
    fn fig2_storyline_reproduced() {
        let sim = fig2_scenario().unwrap();
        let trace = sim.run().unwrap();

        // (a) t ∈ [0, 5): DNN1 alone on the NPU at full width.
        let a = trace.app_at(3.0, names::DNN1).expect("dnn1 sampled");
        assert_eq!(a.cluster, "npu", "t=3s: {a:?}");
        assert_eq!(a.level, 3);

        // (b) t ∈ [5, 15): DNN2 on the NPU exclusively at full width; DNN1
        // migrated to the GPU, compressed below full width.
        let d2 = trace.app_at(10.0, names::DNN2).unwrap();
        assert_eq!(d2.cluster, "npu", "t=10s: {d2:?}");
        assert_eq!(d2.level, 3);
        let d1 = trace.app_at(10.0, names::DNN1).unwrap();
        assert_eq!(d1.cluster, "gpu", "t=10s: {d1:?}");
        assert!(d1.level < 3, "dnn1 compresses on the GPU: {d1:?}");

        // (c) after t = 15: VR/AR on the GPU; DNN1 on the big CPU cluster.
        let vr = trace.app_at(16.0, names::VRAR).unwrap();
        assert_eq!(vr.cluster, "gpu");
        let d1 = trace.app_at(16.0, names::DNN1).unwrap();
        assert_eq!(d1.cluster, "big", "t=16s: {d1:?}");
        assert_eq!(d1.cores, 4, "all four big cores initially: {d1:?}");

        // A thermal violation occurs "shortly after" and throttling
        // shrinks DNN1's core allocation.
        let violation = trace
            .decisions
            .iter()
            .find(|d| d.reason == DecisionReason::ThermalViolation)
            .expect("thermal violation must occur");
        assert!(
            violation.at_secs > 15.0 && violation.at_secs < 25.0,
            "violation at {} s",
            violation.at_secs
        );
        let d1 = trace.app_at(violation.at_secs + 1.0, names::DNN1).unwrap();
        assert!(d1.cores < 4, "throttled core allocation: {d1:?}");
        assert_eq!(d1.level, 0, "compressed to the 25% model: {d1:?}");

        // (d) after t = 25: DNN2 compresses; both DNNs share the NPU; DNN1
        // recovers full width.
        let d2 = trace.app_at(30.0, names::DNN2).unwrap();
        assert_eq!(d2.cluster, "npu", "t=30s: {d2:?}");
        assert!(d2.level < 3, "dnn2 compressed: {d2:?}");
        let d1 = trace.app_at(30.0, names::DNN1).unwrap();
        assert_eq!(d1.cluster, "npu", "t=30s: {d1:?}");
        assert_eq!(d1.level, 3, "dnn1 recovers accuracy: {d1:?}");

        // The die must never sit above the limit at the end (the governor
        // cools it down).
        let last = trace.samples.last().unwrap();
        assert!(
            last.temp.as_celsius() < sim.soc().thermal().limit.as_celsius(),
            "end temperature {}",
            last.temp
        );
    }

    #[test]
    fn fig2_summary_counts_events() {
        let trace = fig2_scenario().unwrap().run().unwrap();
        let s = trace.summary();
        assert!(
            s.decisions >= 5,
            "arrivals + change + thermal events: {s:?}"
        );
        assert_eq!(s.thermal_violations, 1, "{s:?}");
        assert!(s.peak_temp.as_celsius() > fig2_soc().thermal().limit.as_celsius());
        assert!(s.total_energy.as_joules() > 0.0);
        // Requirements are met most of the time, but not during the
        // thermal squeeze.
        assert!(
            s.feasible_fraction > 0.5 && s.feasible_fraction < 1.0,
            "{s:?}"
        );
    }

    #[test]
    fn proactive_policy_prevents_thermal_violations() {
        use crate::simulator::{SimConfig, ThermalPolicy};
        let sim = fig2_scenario_with(SimConfig {
            thermal_policy: ThermalPolicy::Proactive,
            ..SimConfig::default()
        })
        .unwrap();
        let trace = sim.run().unwrap();
        let s = trace.summary();
        assert_eq!(s.thermal_violations, 0, "proactive: no violations: {s:?}");
        let limit = fig2_soc().thermal().limit.as_celsius();
        assert!(
            s.peak_temp.as_celsius() <= limit + 0.5,
            "peak {:.1} must stay at/below the limit",
            s.peak_temp.as_celsius()
        );
        // The throttle engaged proactively at the VR/AR arrival.
        assert!(trace
            .decisions
            .iter()
            .any(|d| d.reason == DecisionReason::ProactiveThrottle));
        // Cost of safety: more time in degraded configurations than the
        // reactive run.
        let reactive = fig2_scenario().unwrap().run().unwrap().summary();
        assert!(s.feasible_fraction <= reactive.feasible_fraction + 1e-9);
    }

    #[test]
    fn scaled_profile_levels() {
        let p = scaled_reference_profile("x", 4.0);
        assert_eq!(p.level_count(), 4);
        let full = p.workload(eml_dnn::WidthLevel(3)).unwrap();
        assert!((full.macs() / presets::REFERENCE_MACS - 4.0).abs() < 1e-9);
    }

    #[test]
    fn csv_export_contains_all_phases() {
        let trace = fig2_scenario().unwrap().run().unwrap();
        let csv = trace.to_csv();
        assert!(csv.contains("dnn1"));
        assert!(csv.contains("dnn2"));
        assert!(csv.contains("vr-ar"));
        assert!(csv.lines().count() > 100);
    }
}
