//! Error types for the simulator.

use std::error::Error;
use std::fmt;

/// Errors returned by simulation runs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Invalid simulation configuration or scenario.
    InvalidScenario {
        /// Human-readable reason.
        reason: String,
    },
    /// An underlying RTM error.
    Rtm(eml_core::RtmError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidScenario { reason } => write!(f, "invalid scenario: {reason}"),
            Self::Rtm(e) => write!(f, "rtm error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Rtm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<eml_core::RtmError> for SimError {
    fn from(e: eml_core::RtmError) -> Self {
        Self::Rtm(e)
    }
}

/// Convenience alias for simulator results.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::InvalidScenario {
            reason: "events out of order".into(),
        };
        assert!(e.to_string().contains("events out of order"));
        assert!(e.source().is_none());
        let e: SimError = eml_core::RtmError::EmptySpace { reason: "x".into() }.into();
        assert!(e.source().is_some());
    }
}
