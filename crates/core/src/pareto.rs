//! Pareto-frontier utilities over the (latency, energy, accuracy) space.
//!
//! The operating points of Fig 4(a) are heavily dominated: for a fixed
//! accuracy level most (frequency, mapping) combinations are strictly worse
//! than a neighbour in both time and energy. Governors that cache the
//! Pareto frontier only need to scan the non-dominated survivors at
//! decision time.

use crate::opspace::EvaluatedPoint;

/// Returns `true` if `a` dominates `b`: no worse in latency, energy and
/// accuracy, and strictly better in at least one.
pub fn dominates(a: &EvaluatedPoint, b: &EvaluatedPoint) -> bool {
    let no_worse =
        a.latency <= b.latency && a.energy <= b.energy && a.top1_percent >= b.top1_percent;
    let strictly_better =
        a.latency < b.latency || a.energy < b.energy || a.top1_percent > b.top1_percent;
    no_worse && strictly_better
}

/// Filters `points` down to its Pareto frontier (non-dominated set).
///
/// Order of the survivors follows the input order. `O(n²)` — fine for the
/// few-hundred-point spaces of embedded SoCs.
pub fn pareto_front(points: &[EvaluatedPoint]) -> Vec<EvaluatedPoint> {
    points
        .iter()
        .filter(|candidate| !points.iter().any(|other| dominates(other, candidate)))
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opspace::{OpSpace, OpSpaceConfig, OperatingPoint};
    use eml_dnn::profile::DnnProfile;
    use eml_dnn::WidthLevel;
    use eml_platform::presets;
    use eml_platform::units::{Energy, Power, TimeSpan};
    use eml_platform::ClusterId;

    fn pt(lat_ms: f64, e_mj: f64, top1: f64) -> EvaluatedPoint {
        EvaluatedPoint {
            op: OperatingPoint {
                cluster: ClusterId::from_index(0),
                cores: 1,
                opp_index: 0,
                level: WidthLevel(0),
            },
            latency: TimeSpan::from_millis(lat_ms),
            energy: Energy::from_millijoules(e_mj),
            power: Power::from_milliwatts(1.0),
            top1_percent: top1,
        }
    }

    #[test]
    fn dominance_definition() {
        let better = pt(100.0, 50.0, 70.0);
        let worse = pt(200.0, 60.0, 60.0);
        assert!(dominates(&better, &worse));
        assert!(!dominates(&worse, &better));
        // Equal points do not dominate each other.
        assert!(!dominates(&better, &better.clone()));
        // Trade-off points do not dominate.
        let fast_inaccurate = pt(50.0, 40.0, 55.0);
        let slow_accurate = pt(300.0, 90.0, 71.0);
        assert!(!dominates(&fast_inaccurate, &slow_accurate));
        assert!(!dominates(&slow_accurate, &fast_inaccurate));
    }

    #[test]
    fn frontier_removes_dominated_points() {
        let pts = vec![
            pt(100.0, 50.0, 70.0),
            pt(200.0, 60.0, 60.0), // dominated by the first
            pt(50.0, 80.0, 70.0),  // trade-off: faster but hungrier
        ];
        let front = pareto_front(&pts);
        assert_eq!(front.len(), 2);
        assert!(front
            .iter()
            .any(|p| p.latency == TimeSpan::from_millis(100.0)));
        assert!(front
            .iter()
            .any(|p| p.latency == TimeSpan::from_millis(50.0)));
    }

    #[test]
    fn frontier_of_empty_and_singleton() {
        assert!(pareto_front(&[]).is_empty());
        let single = [pt(1.0, 1.0, 1.0)];
        assert_eq!(pareto_front(&single).len(), 1);
    }

    #[test]
    fn frontier_is_idempotent() {
        let pts: Vec<EvaluatedPoint> = (0..20)
            .map(|i| {
                pt(
                    100.0 + (i as f64) * 7.0 % 90.0,
                    10.0 + (i as f64 * 13.0) % 70.0,
                    50.0 + (i as f64 * 3.0) % 22.0,
                )
            })
            .collect();
        let f1 = pareto_front(&pts);
        let f2 = pareto_front(&f1);
        assert_eq!(f1, f2);
    }

    #[test]
    fn xu3_space_frontier_is_much_smaller_than_space() {
        let soc = presets::odroid_xu3();
        let profile = DnnProfile::reference("dnn");
        let cpu = vec![
            soc.find_cluster("a15").unwrap(),
            soc.find_cluster("a7").unwrap(),
        ];
        let space =
            OpSpace::new(&soc, &profile, OpSpaceConfig::default().with_clusters(cpu)).unwrap();
        let all = space.evaluate_all().unwrap();
        let front = pareto_front(&all);
        assert!(!front.is_empty());
        // Most DVFS points are genuine latency/energy trade-offs, so the
        // frontier stays sizeable — but a meaningful fraction (the
        // energy-inefficient low-frequency tails) must be dominated.
        assert!(
            front.len() < all.len() * 7 / 10,
            "frontier ({}) should be meaningfully smaller than the space ({})",
            front.len(),
            all.len()
        );
        // Every non-frontier point is dominated by some frontier point.
        for p in &all {
            let on_front = front.iter().any(|f| f.op == p.op);
            if !on_front {
                assert!(front.iter().any(|f| dominates(f, p)));
            }
        }
    }
}
