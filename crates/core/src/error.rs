//! Error types for the runtime resource manager.

use std::error::Error;
use std::fmt;

/// Errors returned by RTM operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RtmError {
    /// The operating-point space is empty (over-constrained configuration).
    EmptySpace {
        /// Human-readable reason.
        reason: String,
    },
    /// Invalid configuration of a governor or the RTM.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// An underlying platform-model error.
    Platform(eml_platform::PlatformError),
    /// An underlying dynamic-DNN error.
    Dnn(eml_dnn::DnnError),
}

impl fmt::Display for RtmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptySpace { reason } => write!(f, "empty operating-point space: {reason}"),
            Self::InvalidConfig { reason } => write!(f, "invalid RTM configuration: {reason}"),
            Self::Platform(e) => write!(f, "platform error: {e}"),
            Self::Dnn(e) => write!(f, "dnn error: {e}"),
        }
    }
}

impl Error for RtmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Platform(e) => Some(e),
            Self::Dnn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<eml_platform::PlatformError> for RtmError {
    fn from(e: eml_platform::PlatformError) -> Self {
        Self::Platform(e)
    }
}

impl From<eml_dnn::DnnError> for RtmError {
    fn from(e: eml_dnn::DnnError) -> Self {
        Self::Dnn(e)
    }
}

/// Convenience alias for RTM results.
pub type Result<T> = std::result::Result<T, RtmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: RtmError = eml_platform::PlatformError::InvalidModel { reason: "x".into() }.into();
        assert!(e.to_string().contains("platform error"));
        assert!(e.source().is_some());
        let e: RtmError = eml_dnn::DnnError::UnknownLevel { level: 1, count: 1 }.into();
        assert!(e.to_string().contains("dnn error"));
        let e = RtmError::EmptySpace {
            reason: "no clusters".into(),
        };
        assert!(e.to_string().contains("no clusters"));
        assert!(e.source().is_none());
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RtmError>();
    }
}
