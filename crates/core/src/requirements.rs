//! Application performance requirements (budgets/targets).
//!
//! The paper's RTM mediates between *application requirements* (latency,
//! energy, frame-rate, accuracy — Fig 1, §IV) and device limits (power,
//! temperature). A [`Requirements`] value captures one application's
//! constraints; feasibility of an operating point is checked with
//! [`Requirements::satisfied_by`].

use std::fmt;

use eml_platform::units::{Energy, Power, TimeSpan};

use crate::opspace::EvaluatedPoint;

/// Constraint set for one application.
///
/// All fields are optional; an empty `Requirements` accepts every operating
/// point. Construct with the builder methods:
///
/// ```
/// use eml_core::requirements::Requirements;
/// use eml_platform::units::{Energy, TimeSpan};
///
/// // The paper's first worked-example budget: 400 ms and 100 mJ.
/// let req = Requirements::new()
///     .with_max_latency(TimeSpan::from_millis(400.0))
///     .with_max_energy(Energy::from_millijoules(100.0));
/// assert!(req.max_latency().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Requirements {
    max_latency: Option<TimeSpan>,
    max_energy: Option<Energy>,
    max_power: Option<Power>,
    min_top1: Option<f64>,
    target_fps: Option<f64>,
}

impl Requirements {
    /// An unconstrained requirement set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-inference latency budget.
    #[must_use]
    pub fn with_max_latency(mut self, t: TimeSpan) -> Self {
        self.max_latency = Some(t);
        self
    }

    /// Sets the per-inference energy budget.
    #[must_use]
    pub fn with_max_energy(mut self, e: Energy) -> Self {
        self.max_energy = Some(e);
        self
    }

    /// Sets the average power budget for this application.
    #[must_use]
    pub fn with_max_power(mut self, p: Power) -> Self {
        self.max_power = Some(p);
        self
    }

    /// Sets the minimum acceptable top-1 accuracy in percent.
    #[must_use]
    pub fn with_min_top1(mut self, percent: f64) -> Self {
        self.min_top1 = Some(percent);
        self
    }

    /// Sets a frame-rate target; implies a latency budget of `1/fps`.
    #[must_use]
    pub fn with_target_fps(mut self, fps: f64) -> Self {
        self.target_fps = Some(fps);
        self
    }

    /// Latency budget, combining an explicit budget with any frame-rate
    /// target (whichever is tighter).
    pub fn max_latency(&self) -> Option<TimeSpan> {
        let fps_latency = self.target_fps.map(|f| TimeSpan::from_secs(1.0 / f));
        match (self.max_latency, fps_latency) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Per-inference energy budget.
    pub fn max_energy(&self) -> Option<Energy> {
        self.max_energy
    }

    /// Power budget.
    pub fn max_power(&self) -> Option<Power> {
        self.max_power
    }

    /// Minimum top-1 accuracy in percent.
    pub fn min_top1(&self) -> Option<f64> {
        self.min_top1
    }

    /// Frame-rate target in frames per second.
    pub fn target_fps(&self) -> Option<f64> {
        self.target_fps
    }

    /// Whether `pt` meets every stated constraint.
    pub fn satisfied_by(&self, pt: &EvaluatedPoint) -> bool {
        self.violations(pt).is_empty()
    }

    /// Total normalised constraint excess of `pt`: the sum over violated
    /// constraints of `actual/budget − 1` (or the normalised accuracy
    /// shortfall). Zero iff feasible. Search policies use this as a smooth
    /// infeasibility gradient.
    pub fn violation_excess(&self, pt: &EvaluatedPoint) -> f64 {
        self.violations(pt)
            .iter()
            .map(|v| match *v {
                Violation::Latency { actual, budget } => actual.as_secs() / budget.as_secs() - 1.0,
                Violation::Energy { actual, budget } => {
                    actual.as_joules() / budget.as_joules() - 1.0
                }
                Violation::Power { actual, budget } => actual.as_watts() / budget.as_watts() - 1.0,
                Violation::Accuracy { actual, min } => (min - actual) / min.max(1e-9),
            })
            .sum()
    }

    /// Lists the constraints `pt` violates (empty = feasible).
    pub fn violations(&self, pt: &EvaluatedPoint) -> Vec<Violation> {
        let mut v = Vec::new();
        if let Some(budget) = self.max_latency() {
            if pt.latency > budget {
                v.push(Violation::Latency {
                    actual: pt.latency,
                    budget,
                });
            }
        }
        if let Some(budget) = self.max_energy {
            if pt.energy > budget {
                v.push(Violation::Energy {
                    actual: pt.energy,
                    budget,
                });
            }
        }
        if let Some(budget) = self.max_power {
            if pt.power > budget {
                v.push(Violation::Power {
                    actual: pt.power,
                    budget,
                });
            }
        }
        if let Some(min) = self.min_top1 {
            if pt.top1_percent < min {
                v.push(Violation::Accuracy {
                    actual: pt.top1_percent,
                    min,
                });
            }
        }
        v
    }
}

/// A single violated constraint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Violation {
    /// Latency exceeded the budget.
    Latency {
        /// Predicted latency.
        actual: TimeSpan,
        /// The budget.
        budget: TimeSpan,
    },
    /// Energy exceeded the budget.
    Energy {
        /// Predicted energy.
        actual: Energy,
        /// The budget.
        budget: Energy,
    },
    /// Power exceeded the budget.
    Power {
        /// Predicted power.
        actual: Power,
        /// The budget.
        budget: Power,
    },
    /// Accuracy fell below the minimum.
    Accuracy {
        /// Expected accuracy (percent).
        actual: f64,
        /// Minimum accuracy (percent).
        min: f64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Latency { actual, budget } => write!(
                f,
                "latency {:.1} ms over budget {:.1} ms",
                actual.as_millis(),
                budget.as_millis()
            ),
            Self::Energy { actual, budget } => write!(
                f,
                "energy {:.1} mJ over budget {:.1} mJ",
                actual.as_millijoules(),
                budget.as_millijoules()
            ),
            Self::Power { actual, budget } => write!(
                f,
                "power {:.0} mW over budget {:.0} mW",
                actual.as_milliwatts(),
                budget.as_milliwatts()
            ),
            Self::Accuracy { actual, min } => {
                write!(f, "accuracy {actual:.1}% below minimum {min:.1}%")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opspace::OperatingPoint;
    use eml_dnn::WidthLevel;
    use eml_platform::ClusterId;

    fn point(lat_ms: f64, e_mj: f64, p_mw: f64, top1: f64) -> EvaluatedPoint {
        EvaluatedPoint {
            op: OperatingPoint {
                cluster: ClusterId::from_index(0),
                cores: 4,
                opp_index: 0,
                level: WidthLevel(0),
            },
            latency: TimeSpan::from_millis(lat_ms),
            energy: Energy::from_millijoules(e_mj),
            power: Power::from_milliwatts(p_mw),
            top1_percent: top1,
        }
    }

    #[test]
    fn empty_requirements_accept_anything() {
        let req = Requirements::new();
        assert!(req.satisfied_by(&point(1e9, 1e9, 1e9, 0.0)));
    }

    #[test]
    fn each_constraint_is_checked() {
        let req = Requirements::new()
            .with_max_latency(TimeSpan::from_millis(100.0))
            .with_max_energy(Energy::from_millijoules(50.0))
            .with_max_power(Power::from_milliwatts(500.0))
            .with_min_top1(60.0);
        assert!(
            req.satisfied_by(&point(100.0, 50.0, 500.0, 60.0)),
            "boundary is feasible"
        );
        assert_eq!(req.violations(&point(101.0, 50.0, 500.0, 60.0)).len(), 1);
        assert_eq!(req.violations(&point(100.0, 51.0, 500.0, 60.0)).len(), 1);
        assert_eq!(req.violations(&point(100.0, 50.0, 501.0, 60.0)).len(), 1);
        assert_eq!(req.violations(&point(100.0, 50.0, 500.0, 59.9)).len(), 1);
        assert_eq!(req.violations(&point(200.0, 99.0, 999.0, 10.0)).len(), 4);
    }

    #[test]
    fn fps_implies_latency_budget() {
        let req = Requirements::new().with_target_fps(25.0);
        assert_eq!(req.max_latency(), Some(TimeSpan::from_secs(0.04)));
        // Tighter of the two wins.
        let req = req.with_max_latency(TimeSpan::from_millis(30.0));
        assert_eq!(req.max_latency(), Some(TimeSpan::from_millis(30.0)));
        let req = Requirements::new()
            .with_target_fps(25.0)
            .with_max_latency(TimeSpan::from_millis(500.0));
        assert_eq!(req.max_latency(), Some(TimeSpan::from_secs(0.04)));
    }

    #[test]
    fn violations_display() {
        let req = Requirements::new().with_max_latency(TimeSpan::from_millis(10.0));
        let v = req.violations(&point(20.0, 0.0, 0.0, 100.0));
        assert!(v[0].to_string().contains("20.0 ms over budget 10.0 ms"));
    }
}
