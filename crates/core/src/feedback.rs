//! Monitor-driven model adaptation — closing the Fig 5 loop.
//!
//! The RTM decides from *predicted* metrics; the application monitors
//! report *observed* ones. On a real device the two drift apart (cache
//! contention, memory pressure, thermal leakage). The paper's conclusion
//! calls for "runtime resource allocation **and adaptation**": this module
//! provides the adaptation half, a per-cluster multiplicative latency
//! correction learned from monitor readings with an exponentially weighted
//! moving average.
//!
//! Usage: after each inference, feed `(cluster, predicted, observed)` into
//! [`LatencyFeedback::observe`]; before each decision, apply
//! [`LatencyFeedback::apply`] to the [`OpSpaceConfig`] so the governor
//! reasons about corrected latencies.

use std::collections::HashMap;

use eml_platform::soc::ClusterId;
use eml_platform::units::TimeSpan;

use crate::opspace::OpSpaceConfig;

/// Per-cluster multiplicative latency correction with EWMA updates.
///
/// A correction of `1.0` means the model is trusted as-is; `1.3` means the
/// cluster has been observed running 30 % slower than predicted.
#[derive(Debug, Clone)]
pub struct LatencyFeedback {
    alpha: f64,
    corrections: HashMap<usize, f64>,
}

impl LatencyFeedback {
    /// Creates a feedback tracker with EWMA rate `alpha ∈ (0, 1]`
    /// (1 = trust only the latest observation).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` — a configuration bug.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA rate must be in (0, 1], got {alpha}"
        );
        Self {
            alpha,
            corrections: HashMap::new(),
        }
    }

    /// The current correction for `cluster` (1.0 when nothing observed).
    pub fn correction(&self, cluster: ClusterId) -> f64 {
        self.corrections
            .get(&cluster.index())
            .copied()
            .unwrap_or(1.0)
    }

    /// Incorporates one observation: the job on `cluster` was predicted to
    /// take `predicted` but took `observed`.
    ///
    /// Non-positive or non-finite inputs are ignored (a glitched monitor
    /// must not poison the model).
    pub fn observe(&mut self, cluster: ClusterId, predicted: TimeSpan, observed: TimeSpan) {
        let p = predicted.as_secs();
        let o = observed.as_secs();
        if p <= 0.0 || o <= 0.0 || !p.is_finite() || !o.is_finite() {
            return;
        }
        let ratio = o / p;
        let entry = self.corrections.entry(cluster.index()).or_insert(1.0);
        *entry = (1.0 - self.alpha) * *entry + self.alpha * ratio;
    }

    /// Number of clusters with learned corrections.
    pub fn observed_clusters(&self) -> usize {
        self.corrections.len()
    }

    /// Applies the learned corrections to an [`OpSpaceConfig`] as
    /// latency multipliers, returning the corrected config.
    ///
    /// Corrections compose multiplicatively with any sharing penalty
    /// already present.
    #[must_use]
    pub fn apply(&self, mut cfg: OpSpaceConfig) -> OpSpaceConfig {
        for (&idx, &corr) in &self.corrections {
            let existing = cfg.latency_corrections.get(&idx).copied().unwrap_or(1.0);
            cfg.latency_corrections.insert(idx, existing * corr);
        }
        cfg
    }

    /// Forgets everything (e.g. after a DVFS-table change).
    pub fn reset(&mut self) {
        self.corrections.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::{ExhaustiveGovernor, Governor};
    use crate::objective::Objective;
    use crate::opspace::OpSpace;
    use crate::requirements::Requirements;
    use eml_dnn::profile::DnnProfile;
    use eml_platform::presets;

    fn ms(v: f64) -> TimeSpan {
        TimeSpan::from_millis(v)
    }

    #[test]
    fn starts_neutral_and_learns_ratio() {
        let c0 = ClusterId::from_index(0);
        let mut fb = LatencyFeedback::new(1.0);
        assert_eq!(fb.correction(c0), 1.0);
        fb.observe(c0, ms(100.0), ms(130.0));
        assert!((fb.correction(c0) - 1.3).abs() < 1e-12);
        assert_eq!(fb.observed_clusters(), 1);
        fb.reset();
        assert_eq!(fb.correction(c0), 1.0);
    }

    #[test]
    fn ewma_smooths_observations() {
        let c0 = ClusterId::from_index(0);
        let mut fb = LatencyFeedback::new(0.5);
        fb.observe(c0, ms(100.0), ms(200.0)); // ratio 2.0 -> 1.5
        assert!((fb.correction(c0) - 1.5).abs() < 1e-12);
        fb.observe(c0, ms(100.0), ms(200.0)); // -> 1.75
        assert!((fb.correction(c0) - 1.75).abs() < 1e-12);
        // Converges toward 2.0, never overshoots.
        for _ in 0..50 {
            fb.observe(c0, ms(100.0), ms(200.0));
        }
        assert!((fb.correction(c0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn glitched_monitors_are_ignored() {
        let c0 = ClusterId::from_index(0);
        let mut fb = LatencyFeedback::new(1.0);
        fb.observe(c0, ms(0.0), ms(100.0));
        fb.observe(c0, ms(100.0), ms(-5.0));
        fb.observe(c0, ms(f64::NAN), ms(100.0));
        assert_eq!(fb.correction(c0), 1.0);
        assert_eq!(fb.observed_clusters(), 0);
    }

    #[test]
    #[should_panic(expected = "EWMA rate")]
    fn invalid_alpha_panics() {
        let _ = LatencyFeedback::new(0.0);
    }

    /// The Fig 5 loop end-to-end: a cluster that runs 40 % slower than
    /// modelled first produces an over-budget decision; after the monitor
    /// feedback, the governor picks a configuration that meets the budget
    /// *under the real behaviour*.
    #[test]
    fn feedback_repairs_model_error() {
        let soc = presets::odroid_xu3();
        let profile = DnnProfile::reference("dnn");
        let a15 = soc.find_cluster("a15").unwrap();
        let real_slowdown = 1.4; // ground truth unknown to the model

        let req = Requirements::new().with_max_latency(ms(200.0));
        let base_cfg = OpSpaceConfig::default().with_clusters(vec![a15]);

        // 1. Uncorrected decision.
        let space = OpSpace::new(&soc, &profile, base_cfg.clone()).unwrap();
        let naive = ExhaustiveGovernor
            .decide(&space, &req, Objective::default())
            .unwrap()
            .expect("feasible in the model's belief");
        let naive_observed = naive.latency * real_slowdown;
        assert!(
            naive_observed.as_millis() > 200.0,
            "the naive decision must violate in reality ({naive_observed})"
        );

        // 2. The monitor reports the miss; feedback learns the correction.
        let mut fb = LatencyFeedback::new(1.0);
        fb.observe(a15, naive.latency, naive_observed);

        // 3. Corrected decision meets the budget in reality.
        let corrected_space = OpSpace::new(&soc, &profile, fb.apply(base_cfg)).unwrap();
        let adapted = ExhaustiveGovernor
            .decide(&corrected_space, &req, Objective::default())
            .unwrap()
            .expect("still feasible after correction");
        // The corrected prediction already includes the slowdown, so the
        // real latency equals the prediction.
        assert!(
            adapted.latency.as_millis() <= 200.0 + 1e-9,
            "adapted decision must be really feasible ({})",
            adapted.latency
        );
        assert!(
            adapted.op.level < naive.op.level || adapted.op.opp_index > naive.op.opp_index,
            "adaptation must pick a narrower width or higher frequency"
        );
    }
}
