//! Monitor-driven model adaptation — closing the Fig 5 loop.
//!
//! The RTM decides from *predicted* metrics; the application monitors
//! report *observed* ones. On a real device the two drift apart (cache
//! contention, memory pressure, thermal leakage). The paper's conclusion
//! calls for "runtime resource allocation **and adaptation**": this module
//! provides the adaptation half, a per-cluster multiplicative latency
//! correction learned from monitor readings with an exponentially weighted
//! moving average.
//!
//! Usage: after each inference, feed `(cluster, predicted, observed)` into
//! [`LatencyFeedback::observe`]; before each decision, apply
//! [`LatencyFeedback::apply`] to the [`OpSpaceConfig`] so the governor
//! reasons about corrected latencies.

use std::collections::HashMap;

use eml_platform::soc::ClusterId;
use eml_platform::units::TimeSpan;

use crate::opspace::OpSpaceConfig;

/// Per-cluster multiplicative latency correction with EWMA updates.
///
/// A correction of `1.0` means the model is trusted as-is; `1.3` means the
/// cluster has been observed running 30 % slower than predicted.
#[derive(Debug, Clone)]
pub struct LatencyFeedback {
    alpha: f64,
    corrections: HashMap<usize, f64>,
}

impl LatencyFeedback {
    /// Creates a feedback tracker with EWMA rate `alpha ∈ (0, 1]`
    /// (1 = trust only the latest observation).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` — a configuration bug.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA rate must be in (0, 1], got {alpha}"
        );
        Self {
            alpha,
            corrections: HashMap::new(),
        }
    }

    /// The current correction for `cluster` (1.0 when nothing observed).
    pub fn correction(&self, cluster: ClusterId) -> f64 {
        self.corrections
            .get(&cluster.index())
            .copied()
            .unwrap_or(1.0)
    }

    /// Incorporates one observation: the job on `cluster` was predicted to
    /// take `predicted` but took `observed`.
    ///
    /// Non-positive or non-finite inputs are ignored (a glitched monitor
    /// must not poison the model).
    pub fn observe(&mut self, cluster: ClusterId, predicted: TimeSpan, observed: TimeSpan) {
        let p = predicted.as_secs();
        let o = observed.as_secs();
        if p <= 0.0 || o <= 0.0 || !p.is_finite() || !o.is_finite() {
            return;
        }
        let ratio = o / p;
        let entry = self.corrections.entry(cluster.index()).or_insert(1.0);
        *entry = (1.0 - self.alpha) * *entry + self.alpha * ratio;
    }

    /// Number of clusters with learned corrections.
    pub fn observed_clusters(&self) -> usize {
        self.corrections.len()
    }

    /// Applies the learned corrections to an [`OpSpaceConfig`] as
    /// latency multipliers, returning the corrected config.
    ///
    /// Corrections compose multiplicatively with any sharing penalty
    /// already present.
    #[must_use]
    pub fn apply(&self, mut cfg: OpSpaceConfig) -> OpSpaceConfig {
        for (&idx, &corr) in &self.corrections {
            let existing = cfg.latency_corrections.get(&idx).copied().unwrap_or(1.0);
            cfg.latency_corrections.insert(idx, existing * corr);
        }
        cfg
    }

    /// Forgets everything (e.g. after a DVFS-table change).
    pub fn reset(&mut self) {
        self.corrections.clear();
    }
}

/// Sustained deadline-miss detection over a sliding window of request
/// outcomes — the trigger side of the serving feedback loop.
///
/// A single missed deadline is noise (a cold cache, a scheduler blip);
/// re-allocating on every miss would thrash the knobs. The tracker
/// records per-request met/missed outcomes and reports a *sustained*
/// miss only once the window is full and the miss rate crosses the
/// threshold — at which point the caller re-invokes the RTM (typically
/// via [`crate::rtm::Rtm::allocate_with_feedback`]) and
/// [resets](MissTracker::reset) the tracker so the new operating point
/// gets a fresh window.
#[derive(Debug, Clone)]
pub struct MissTracker {
    window: usize,
    threshold: f64,
    recent: std::collections::VecDeque<bool>,
    misses: usize,
}

impl MissTracker {
    /// Creates a tracker that reports a sustained miss when at least
    /// `threshold` (fraction in `(0, 1]`) of the last `window`
    /// outcomes missed their deadline.
    ///
    /// # Panics
    ///
    /// Panics on `window == 0` or a threshold outside `(0, 1]` — both
    /// configuration bugs.
    pub fn new(window: usize, threshold: f64) -> Self {
        assert!(window > 0, "miss window must be positive");
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "miss threshold must be in (0, 1], got {threshold}"
        );
        Self {
            window,
            threshold,
            recent: std::collections::VecDeque::with_capacity(window),
            misses: 0,
        }
    }

    /// Records one request outcome (`met = true` when the deadline held).
    pub fn record(&mut self, met: bool) {
        if self.recent.len() == self.window && self.recent.pop_front() == Some(false) {
            self.misses -= 1;
        }
        self.recent.push_back(met);
        if !met {
            self.misses += 1;
        }
    }

    /// Miss fraction over the current window contents (0.0 when empty).
    pub fn miss_rate(&self) -> f64 {
        if self.recent.is_empty() {
            0.0
        } else {
            self.misses as f64 / self.recent.len() as f64
        }
    }

    /// Number of outcomes currently in the window.
    pub fn observed(&self) -> usize {
        self.recent.len()
    }

    /// Whether the window is full and the miss rate is at/above the
    /// threshold — the re-allocation trigger.
    pub fn sustained_miss(&self) -> bool {
        self.recent.len() == self.window && self.miss_rate() >= self.threshold
    }

    /// Whether the window is full and *every* outcome in it met its
    /// deadline — the hysteresis gate a recovery path uses before
    /// undoing a degradation step (a full clean window, not merely a
    /// below-threshold rate, so knobs don't flap).
    pub fn all_met(&self) -> bool {
        self.recent.len() == self.window && self.misses == 0
    }

    /// Clears the window (call after acting on a sustained miss, so the
    /// new operating point is judged on its own outcomes).
    pub fn reset(&mut self) {
        self.recent.clear();
        self.misses = 0;
    }
}

/// A scalar exponentially-weighted moving average — the smoothing
/// primitive behind [`LatencyFeedback`], exposed on its own for other
/// monitor-driven signals (the serving layer damps its per-app health
/// scores with it so a one-tick blip doesn't whipsaw downstream
/// policy).
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates a smoother with rate `alpha ∈ (0, 1]` (1 = track the
    /// newest observation exactly).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` — a configuration bug.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA rate must be in (0, 1], got {alpha}"
        );
        Self { alpha, value: None }
    }

    /// Incorporates one observation and returns the smoothed value.
    /// The first observation seeds the average; non-finite inputs are
    /// ignored (returning the current value unchanged).
    pub fn observe(&mut self, x: f64) -> f64 {
        if x.is_finite() {
            self.value = Some(match self.value {
                None => x,
                Some(prev) => (1.0 - self.alpha) * prev + self.alpha * x,
            });
        }
        self.value.unwrap_or(x)
    }

    /// The current smoothed value (`None` before any observation).
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Forgets the history; the next observation re-seeds.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::{ExhaustiveGovernor, Governor};
    use crate::objective::Objective;
    use crate::opspace::OpSpace;
    use crate::requirements::Requirements;
    use eml_dnn::profile::DnnProfile;
    use eml_platform::presets;

    fn ms(v: f64) -> TimeSpan {
        TimeSpan::from_millis(v)
    }

    #[test]
    fn starts_neutral_and_learns_ratio() {
        let c0 = ClusterId::from_index(0);
        let mut fb = LatencyFeedback::new(1.0);
        assert_eq!(fb.correction(c0), 1.0);
        fb.observe(c0, ms(100.0), ms(130.0));
        assert!((fb.correction(c0) - 1.3).abs() < 1e-12);
        assert_eq!(fb.observed_clusters(), 1);
        fb.reset();
        assert_eq!(fb.correction(c0), 1.0);
    }

    #[test]
    fn ewma_smooths_observations() {
        let c0 = ClusterId::from_index(0);
        let mut fb = LatencyFeedback::new(0.5);
        fb.observe(c0, ms(100.0), ms(200.0)); // ratio 2.0 -> 1.5
        assert!((fb.correction(c0) - 1.5).abs() < 1e-12);
        fb.observe(c0, ms(100.0), ms(200.0)); // -> 1.75
        assert!((fb.correction(c0) - 1.75).abs() < 1e-12);
        // Converges toward 2.0, never overshoots.
        for _ in 0..50 {
            fb.observe(c0, ms(100.0), ms(200.0));
        }
        assert!((fb.correction(c0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn glitched_monitors_are_ignored() {
        let c0 = ClusterId::from_index(0);
        let mut fb = LatencyFeedback::new(1.0);
        fb.observe(c0, ms(0.0), ms(100.0));
        fb.observe(c0, ms(100.0), ms(-5.0));
        fb.observe(c0, ms(f64::NAN), ms(100.0));
        assert_eq!(fb.correction(c0), 1.0);
        assert_eq!(fb.observed_clusters(), 0);
    }

    #[test]
    #[should_panic(expected = "EWMA rate")]
    fn invalid_alpha_panics() {
        let _ = LatencyFeedback::new(0.0);
    }

    #[test]
    fn miss_tracker_fires_only_on_sustained_misses() {
        let mut t = MissTracker::new(4, 0.5);
        assert!(!t.sustained_miss(), "empty window never fires");
        t.record(false);
        t.record(false);
        t.record(false);
        assert!(
            !t.sustained_miss(),
            "a part-filled window never fires, whatever its rate"
        );
        t.record(true);
        assert!((t.miss_rate() - 0.75).abs() < 1e-12);
        assert!(t.sustained_miss(), "3/4 misses over a full window fires");
        // The window slides: two more mets leave one miss in view.
        t.record(true);
        t.record(true);
        assert!((t.miss_rate() - 0.25).abs() < 1e-12);
        assert!(!t.sustained_miss());
        t.reset();
        assert_eq!(t.observed(), 0);
        assert!(!t.sustained_miss());
    }

    #[test]
    #[should_panic(expected = "miss threshold")]
    fn miss_tracker_rejects_bad_threshold() {
        let _ = MissTracker::new(4, 0.0);
    }

    #[test]
    fn all_met_needs_a_full_clean_window() {
        let mut t = MissTracker::new(3, 0.5);
        t.record(true);
        t.record(true);
        assert!(!t.all_met(), "a part-filled window is not proof of health");
        t.record(true);
        assert!(t.all_met());
        t.record(false);
        assert!(!t.all_met(), "one miss in view blocks recovery");
        // The miss must slide fully out of the window again.
        t.record(true);
        t.record(true);
        assert!(!t.all_met());
        t.record(true);
        assert!(t.all_met());
    }

    #[test]
    fn allocate_with_feedback_degrades_the_placed_point() {
        use crate::rtm::{AppSpec, DnnAppSpec, Rtm, RtmConfig};
        // A correction that makes every cluster 40% slower must push the
        // allocator to a lower width (or different point) than the
        // uncorrected model picks, for a budget near the feasibility
        // boundary of the uncorrected model.
        let soc = presets::odroid_xu3();
        let app = |req: Requirements| {
            AppSpec::Dnn(DnnAppSpec {
                name: "dnn".into(),
                profile: DnnProfile::reference("dnn"),
                requirements: req,
                priority: 1,
                objective: None,
            })
        };
        let rtm = Rtm::new(RtmConfig::default());
        let req = Requirements::new().with_max_latency(ms(70.0));
        let plain = rtm.allocate(&soc, &[app(req.clone())]).unwrap();
        let d_plain = plain.dnn("dnn").unwrap();
        assert!(d_plain.violations.is_empty(), "{plain}");

        let mut fb = LatencyFeedback::new(1.0);
        for id in soc.cluster_ids() {
            fb.observe(id, ms(100.0), ms(140.0));
        }
        let corrected = rtm
            .allocate_with_feedback(&soc, &[app(req)], Some(&fb))
            .unwrap();
        let d_corr = corrected.dnn("dnn").unwrap();
        // Corrected latency prediction reflects the 1.4x slowdown…
        assert!(
            d_corr.point.latency > d_plain.point.latency * 1.0001
                || d_corr.point.op != d_plain.point.op,
            "correction must be visible in the decision:\n{plain}\nvs\n{corrected}"
        );
        // …and an empty feedback reduces to the uncorrected allocation.
        let neutral = rtm
            .allocate_with_feedback(
                &soc,
                &[app(Requirements::new().with_max_latency(ms(70.0)))],
                Some(&LatencyFeedback::new(1.0)),
            )
            .unwrap();
        assert_eq!(neutral.dnn("dnn").unwrap().point.op, d_plain.point.op);
    }

    /// The Fig 5 loop end-to-end: a cluster that runs 40 % slower than
    /// modelled first produces an over-budget decision; after the monitor
    /// feedback, the governor picks a configuration that meets the budget
    /// *under the real behaviour*.
    #[test]
    fn feedback_repairs_model_error() {
        let soc = presets::odroid_xu3();
        let profile = DnnProfile::reference("dnn");
        let a15 = soc.find_cluster("a15").unwrap();
        let real_slowdown = 1.4; // ground truth unknown to the model

        let req = Requirements::new().with_max_latency(ms(200.0));
        let base_cfg = OpSpaceConfig::default().with_clusters(vec![a15]);

        // 1. Uncorrected decision.
        let space = OpSpace::new(&soc, &profile, base_cfg.clone()).unwrap();
        let naive = ExhaustiveGovernor
            .decide(&space, &req, Objective::default())
            .unwrap()
            .expect("feasible in the model's belief");
        let naive_observed = naive.latency * real_slowdown;
        assert!(
            naive_observed.as_millis() > 200.0,
            "the naive decision must violate in reality ({naive_observed})"
        );

        // 2. The monitor reports the miss; feedback learns the correction.
        let mut fb = LatencyFeedback::new(1.0);
        fb.observe(a15, naive.latency, naive_observed);

        // 3. Corrected decision meets the budget in reality.
        let corrected_space = OpSpace::new(&soc, &profile, fb.apply(base_cfg)).unwrap();
        let adapted = ExhaustiveGovernor
            .decide(&corrected_space, &req, Objective::default())
            .unwrap()
            .expect("still feasible after correction");
        // The corrected prediction already includes the slowdown, so the
        // real latency equals the prediction.
        assert!(
            adapted.latency.as_millis() <= 200.0 + 1e-9,
            "adapted decision must be really feasible ({})",
            adapted.latency
        );
        assert!(
            adapted.op.level < naive.op.level || adapted.op.opp_index > naive.op.opp_index,
            "adaptation must pick a narrower width or higher frequency"
        );
    }

    #[test]
    fn ewma_seeds_smooths_and_ignores_garbage() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert!((e.observe(100.0) - 100.0).abs() < 1e-12, "first seeds");
        assert!((e.observe(0.0) - 50.0).abs() < 1e-12);
        let before = e.value().unwrap();
        assert!((e.observe(f64::NAN) - before).abs() < 1e-12, "NaN ignored");
        assert_eq!(e.value(), Some(before));
        e.reset();
        assert_eq!(e.value(), None);
        assert!((e.observe(7.0) - 7.0).abs() < 1e-12, "re-seeds after reset");
    }
}
