//! Design-time static-pruning baseline (paper §III-B, Fig 1).
//!
//! Static pruning compresses a DNN *once, at design time*, for a target
//! platform and performance requirement, assuming a fixed hardware setting
//! (chosen core at a chosen frequency). This module implements that flow —
//! it is the baseline the dynamic approach is compared against:
//!
//! - [`design_time_prune`] picks the single best (cluster, OPP, width) for
//!   a requirement on a platform — the per-platform compression of Fig 1.
//! - [`dvfs_robustness`] quantifies the paper's §III-B criticism: when the
//!   assumed frequency is unavailable at runtime (other workloads own the
//!   DVFS domain), the static model violates its budget, while the dynamic
//!   DNN adapts by dropping width.

use eml_dnn::profile::DnnProfile;
use eml_dnn::WidthLevel;
use eml_platform::soc::Soc;
use eml_platform::units::Freq;

use crate::error::Result;
use crate::governor::{ExhaustiveGovernor, Governor};
use crate::objective::Objective;
use crate::opspace::{EvaluatedPoint, OpSpace, OpSpaceConfig};
use crate::requirements::Requirements;

/// The design-time choice for one platform/requirement pair.
#[derive(Debug, Clone)]
pub struct StaticDesign {
    /// Chosen width level — the model that would be shipped.
    pub level: WidthLevel,
    /// The fixed hardware setting the choice assumed.
    pub point: EvaluatedPoint,
    /// Cluster name of the assumed setting.
    pub cluster_name: String,
    /// Frequency of the assumed setting.
    pub freq: Freq,
}

/// Chooses the statically pruned model for `req` on `soc` (Fig 1 flow):
/// the widest (most accurate) configuration that meets the requirement at
/// some fixed hardware setting, with energy as tie-break.
///
/// `cfg` restricts the considered hardware settings (e.g. to the CPU
/// clusters a deployment targets); pass `OpSpaceConfig::default()` for the
/// whole platform.
///
/// Returns `None` if no width level meets the requirement anywhere in the
/// considered space.
///
/// # Errors
///
/// Propagates structural platform/profile errors.
pub fn design_time_prune(
    soc: &Soc,
    profile: &DnnProfile,
    req: &Requirements,
    cfg: OpSpaceConfig,
) -> Result<Option<StaticDesign>> {
    let space = OpSpace::new(soc, profile, cfg)?;
    let best = ExhaustiveGovernor.decide(&space, req, Objective::MaxAccuracyThenMinEnergy)?;
    Ok(best.map(|point| {
        let cluster = soc
            .cluster(point.op.cluster)
            .expect("point enumerated from soc");
        StaticDesign {
            level: point.op.level,
            cluster_name: cluster.name().to_string(),
            freq: cluster
                .opps()
                .get(point.op.opp_index)
                .expect("opp valid")
                .freq(),
            point,
        }
    }))
}

/// Outcome of running a design under a perturbed DVFS environment.
#[derive(Debug, Clone)]
pub struct RobustnessOutcome {
    /// OPP index actually available at runtime.
    pub actual_opp: usize,
    /// Latency of the *static* model at the available frequency.
    pub static_point: EvaluatedPoint,
    /// Whether the static model still meets the requirement.
    pub static_ok: bool,
    /// Best the *dynamic* model can do at the available frequency (width
    /// re-chosen at runtime), if any width is feasible.
    pub dynamic_point: Option<EvaluatedPoint>,
}

/// Replays a static design against every OPP of its cluster, as happens
/// when other applications pin the frequency domain (paper §III-B), and
/// compares with a dynamic DNN that may re-choose its width at runtime.
///
/// # Errors
///
/// Propagates structural platform/profile errors.
pub fn dvfs_robustness(
    soc: &Soc,
    profile: &DnnProfile,
    req: &Requirements,
    design: &StaticDesign,
) -> Result<Vec<RobustnessOutcome>> {
    let cluster_id = design.point.op.cluster;
    let spec = soc.cluster(cluster_id)?;
    let mut outcomes = Vec::with_capacity(spec.opps().len());
    for opp in 0..spec.opps().len() {
        let space = OpSpace::new(
            soc,
            profile,
            OpSpaceConfig::default()
                .with_clusters(vec![cluster_id])
                .with_opp_restriction(cluster_id, vec![opp]),
        )?;
        // Static: width fixed at the design-time level.
        let static_point = space.evaluate(crate::opspace::OperatingPoint {
            cluster: cluster_id,
            cores: design.point.op.cores,
            opp_index: opp,
            level: design.level,
        })?;
        // Dynamic: re-decide the width at this frequency.
        let dynamic_point =
            ExhaustiveGovernor.decide(&space, req, Objective::MaxAccuracyThenMinEnergy)?;
        outcomes.push(RobustnessOutcome {
            actual_opp: opp,
            static_ok: req.satisfied_by(&static_point),
            static_point,
            dynamic_point,
        });
    }
    Ok(outcomes)
}

/// Summary statistics of a robustness sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessSummary {
    /// OPPs at which the static design violates its requirement.
    pub static_violations: usize,
    /// OPPs at which the dynamic DNN still finds a feasible width.
    pub dynamic_feasible: usize,
    /// Total OPPs swept.
    pub total: usize,
}

/// Summarises a robustness sweep.
pub fn summarize(outcomes: &[RobustnessOutcome]) -> RobustnessSummary {
    RobustnessSummary {
        static_violations: outcomes.iter().filter(|o| !o.static_ok).count(),
        dynamic_feasible: outcomes
            .iter()
            .filter(|o| o.dynamic_point.is_some())
            .count(),
        total: outcomes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eml_platform::presets;
    use eml_platform::units::TimeSpan;

    #[test]
    fn fig1_style_pruning_levels_track_platform_capability() {
        // The same requirement forces more compression on a weaker
        // platform — the essence of Fig 1.
        let profile = DnnProfile::reference("dnn");
        let req = Requirements::new().with_max_latency(TimeSpan::from_millis(40.0)); // 25 fps
        let strong = presets::flagship();
        let weak = presets::odroid_xu3();
        let cpus = |soc: &eml_platform::Soc| {
            OpSpaceConfig::default().with_clusters(
                soc.clusters()
                    .filter(|(_, c)| c.kind().is_cpu())
                    .map(|(id, _)| id)
                    .collect(),
            )
        };
        let on_strong = design_time_prune(&strong, &profile, &req, cpus(&strong))
            .unwrap()
            .expect("feasible on flagship");
        let on_weak = design_time_prune(&weak, &profile, &req, cpus(&weak))
            .unwrap()
            .expect("feasible on xu3");
        assert_eq!(on_strong.level, WidthLevel(3), "flagship runs uncompressed");
        assert!(
            on_weak.level < on_strong.level,
            "weaker platform must compress: {:?}",
            on_weak.level
        );
    }

    #[test]
    fn infeasible_requirement_yields_none() {
        let profile = DnnProfile::reference("dnn");
        let req = Requirements::new().with_max_latency(TimeSpan::from_millis(0.01));
        let soc = presets::odroid_xu3();
        assert!(
            design_time_prune(&soc, &profile, &req, OpSpaceConfig::default())
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn static_design_breaks_under_dvfs_but_dynamic_adapts() {
        // §III-B: pin the frequency below the design point and the static
        // model violates; the dynamic model drops width and survives.
        let profile = DnnProfile::reference("dnn");
        let soc = presets::odroid_xu3();
        // A latency budget the A15 can only meet near the top of its range
        // at full width.
        let req = Requirements::new().with_max_latency(TimeSpan::from_millis(210.0));
        // The deployment targets the A15 cluster (the paper's §III-B story
        // is about CPU frequency domains shared with other workloads).
        let a15 = soc.find_cluster("a15").unwrap();
        let design = design_time_prune(
            &soc,
            &profile,
            &req,
            OpSpaceConfig::default().with_clusters(vec![a15]),
        )
        .unwrap()
        .expect("feasible at design time");
        let outcomes = dvfs_robustness(&soc, &profile, &req, &design).unwrap();
        let summary = summarize(&outcomes);
        assert!(
            summary.static_violations > 0,
            "static design must break at some frequencies: {summary:?}"
        );
        assert!(
            summary.dynamic_feasible > summary.total - summary.static_violations,
            "dynamic DNN must survive at strictly more frequencies: {summary:?}"
        );
        // At every OPP where static violates but dynamic is feasible, the
        // dynamic point uses a narrower width.
        for o in &outcomes {
            if !o.static_ok {
                if let Some(d) = &o.dynamic_point {
                    assert!(d.op.level < design.level);
                }
            }
        }
    }

    #[test]
    fn robustness_sweep_covers_every_opp() {
        let profile = DnnProfile::reference("dnn");
        let soc = presets::odroid_xu3();
        let req = Requirements::new().with_max_latency(TimeSpan::from_millis(300.0));
        let design = design_time_prune(&soc, &profile, &req, OpSpaceConfig::default())
            .unwrap()
            .unwrap();
        let outcomes = dvfs_robustness(&soc, &profile, &req, &design).unwrap();
        let spec = soc.cluster(design.point.op.cluster).unwrap();
        assert_eq!(outcomes.len(), spec.opps().len());
        let s = summarize(&outcomes);
        assert_eq!(s.total, outcomes.len());
    }
}
