//! # eml-core
//!
//! The runtime resource manager (RTM) — the primary contribution of the
//! `emlrt` reproduction of *Xun et al., "Optimising Resource Management for
//! Embedded Machine Learning" (DATE 2020)*.
//!
//! The paper's thesis: dynamic DNNs (application knob), DVFS and task
//! mapping (device knobs) span a rich space of
//! (energy, power, time, accuracy) operating points, and an online manager
//! should navigate that space against application requirements and device
//! limits. This crate implements that manager:
//!
//! - [`opspace`] — enumerate and predict the operating-point space
//!   (the paper's Fig 4a);
//! - [`requirements`]/[`objective`] — budgets and selection rules (§IV);
//! - [`governor`] — decision policies: exhaustive oracle, Pareto cache,
//!   greedy hill-climber (ablations of decision quality vs latency);
//! - [`rtm`] — multi-application allocation with priorities, accelerator
//!   time-sharing, DVFS-domain pinning and strict power caps (Fig 2);
//! - [`knobs`] — the PRiME-style knob/monitor vocabulary and the
//!   allocation→actuation translation (Fig 5);
//! - [`baseline`] — the static-pruning design-time baseline (Fig 1, §III-B)
//!   and its DVFS-robustness comparison against the dynamic approach;
//! - [`pareto`] — frontier utilities;
//! - [`sync`] — [`sync::RankedMutex`], the debug-build lock-order
//!   checker the serving layers' mutexes run on (see
//!   `docs/INVARIANTS.md`).
//!
//! ## The paper's worked example
//!
//! ```
//! use eml_core::governor::{ExhaustiveGovernor, Governor};
//! use eml_core::objective::Objective;
//! use eml_core::opspace::{OpSpace, OpSpaceConfig};
//! use eml_core::requirements::Requirements;
//! use eml_dnn::profile::DnnProfile;
//! use eml_platform::presets;
//! use eml_platform::units::{Energy, TimeSpan};
//!
//! # fn main() -> Result<(), eml_core::RtmError> {
//! let soc = presets::odroid_xu3();
//! let profile = DnnProfile::reference("dnn");
//! let cpus = vec![
//!     soc.find_cluster("a15").unwrap(),
//!     soc.find_cluster("a7").unwrap(),
//! ];
//! let space = OpSpace::new(&soc, &profile, OpSpaceConfig::default().with_clusters(cpus))?;
//! // Budget: 400 ms, 100 mJ → expect the 100% model on the A7 @ 900 MHz.
//! let req = Requirements::new()
//!     .with_max_latency(TimeSpan::from_millis(400.0))
//!     .with_max_energy(Energy::from_millijoules(100.0));
//! let best = ExhaustiveGovernor
//!     .decide(&space, &req, Objective::MaxAccuracyThenMinEnergy)?
//!     .expect("budget is feasible");
//! assert_eq!(best.op.level.index(), 3); // 100% model
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod error;
pub mod feedback;
pub mod governor;
pub mod knobs;
pub mod objective;
pub mod opspace;
pub mod pareto;
pub mod requirements;
pub mod rtm;
pub mod sync;

pub use error::{Result, RtmError};
pub use feedback::LatencyFeedback;
pub use governor::{ExhaustiveGovernor, Governor, GreedyGovernor, ParetoGovernor};
pub use objective::Objective;
pub use opspace::{EvaluatedPoint, OpSpace, OpSpaceConfig, OperatingPoint};
pub use requirements::{Requirements, Violation};
pub use rtm::{Allocation, AppSpec, DnnAppSpec, RigidAppSpec, Rtm, RtmConfig};
pub use sync::{RankedGuard, RankedMutex};
