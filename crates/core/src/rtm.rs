//! The multi-application runtime resource manager.
//!
//! [`Rtm::allocate`] performs a global allocation of the SoC's clusters to
//! a set of applications — the decision engine behind the paper's Fig 2
//! runtime scenario:
//!
//! - applications are served in priority order;
//! - *rigid* applications (VR/AR, background tasks) claim a whole cluster
//!   of their preferred kind;
//! - *DNN* applications get a budget-governor decision over the clusters
//!   still available, under the remaining SoC power budget;
//! - accelerators can be **time-shared** by several DNNs (Fig 2d), which
//!   multiplies every occupant's latency and pins the shared frequency
//!   domain to one OPP (paper §III-B);
//! - when no feasible point exists the RTM degrades gracefully: it picks
//!   the point with the smallest normalised constraint excess and records
//!   the violations, honouring device limits (power/thermal) over
//!   application targets — exactly the priority the paper describes at
//!   t = 15 s of Fig 2.

use std::fmt;

use eml_dnn::profile::DnnProfile;
use eml_platform::soc::{ClusterId, CoreKind, Soc};
use eml_platform::units::{Freq, Power};

use crate::error::{Result, RtmError};
use crate::feedback::LatencyFeedback;
use crate::objective::Objective;
use crate::opspace::{EvaluatedPoint, OpSpace, OpSpaceConfig, OperatingPoint};
use crate::requirements::{Requirements, Violation};

/// A dynamic-DNN application to be placed.
#[derive(Debug, Clone)]
pub struct DnnAppSpec {
    /// Application name (unique within one allocation).
    pub name: String,
    /// The application's dynamic-DNN profile.
    pub profile: DnnProfile,
    /// Performance requirements.
    pub requirements: Requirements,
    /// Priority: higher values are served first.
    pub priority: u8,
    /// Per-app objective override (`None` = the RTM default).
    pub objective: Option<Objective>,
}

/// A rigid (non-scalable) application: claims one whole cluster of a
/// preferred kind at maximum frequency, e.g. a VR/AR renderer on the GPU.
#[derive(Debug, Clone)]
pub struct RigidAppSpec {
    /// Application name.
    pub name: String,
    /// Cluster kinds it can run on, in preference order.
    pub preferred: Vec<CoreKind>,
    /// Activity factor on the claimed cluster (`0..=1`).
    pub utilization: f64,
    /// Priority: higher values are served first.
    pub priority: u8,
}

/// Any application the RTM manages.
#[derive(Debug, Clone)]
pub enum AppSpec {
    /// A width-scalable DNN.
    Dnn(DnnAppSpec),
    /// A rigid cluster-claiming application.
    Rigid(RigidAppSpec),
}

impl AppSpec {
    /// The application's name.
    pub fn name(&self) -> &str {
        match self {
            Self::Dnn(a) => &a.name,
            Self::Rigid(a) => &a.name,
        }
    }

    /// The application's priority.
    pub fn priority(&self) -> u8 {
        match self {
            Self::Dnn(a) => a.priority,
            Self::Rigid(a) => a.priority,
        }
    }
}

/// Placement decided for one DNN application.
#[derive(Debug, Clone)]
pub struct DnnAllocation {
    /// Application name.
    pub app: String,
    /// Chosen operating point with predicted metrics (latency already
    /// includes any time-sharing penalty).
    pub point: EvaluatedPoint,
    /// Name of the chosen cluster.
    pub cluster_name: String,
    /// Chosen frequency.
    pub freq: Freq,
    /// Number of applications time-sharing the cluster (1 = exclusive).
    pub sharers: usize,
    /// Constraints this allocation fails to meet (empty = all met).
    pub violations: Vec<Violation>,
}

/// Placement decided for one rigid application.
#[derive(Debug, Clone)]
pub struct RigidAllocation {
    /// Application name.
    pub app: String,
    /// The claimed cluster.
    pub cluster: ClusterId,
    /// Name of the claimed cluster.
    pub cluster_name: String,
    /// OPP index the cluster runs at.
    pub opp_index: usize,
    /// The application's cluster power draw.
    pub power: Power,
}

/// The result of one global allocation.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// DNN placements, in service order.
    pub dnns: Vec<DnnAllocation>,
    /// Rigid placements, in service order.
    pub rigid: Vec<RigidAllocation>,
    /// Applications that could not be placed at all.
    pub unplaced: Vec<String>,
    /// Clusters that were power-gated because nothing runs on them
    /// (empty unless [`RtmConfig::power_gating`] is enabled).
    pub gated: Vec<ClusterId>,
    /// Predicted total SoC power (busy clusters + idle floors; gated
    /// clusters contribute nothing).
    pub total_power: Power,
    /// The power cap the allocation honoured.
    pub power_cap: Power,
}

impl Allocation {
    /// Whether every application met every requirement.
    pub fn fully_feasible(&self) -> bool {
        self.unplaced.is_empty() && self.dnns.iter().all(|d| d.violations.is_empty())
    }

    /// Finds a DNN allocation by application name.
    pub fn dnn(&self, name: &str) -> Option<&DnnAllocation> {
        self.dnns.iter().find(|d| d.app == name)
    }

    /// Finds a rigid allocation by application name.
    pub fn rigid_app(&self, name: &str) -> Option<&RigidAllocation> {
        self.rigid.iter().find(|r| r.app == name)
    }
}

impl fmt::Display for Allocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rigid {
            writeln!(
                f,
                "{} -> {} (rigid, opp {})",
                r.app, r.cluster_name, r.opp_index
            )?;
        }
        for d in &self.dnns {
            writeln!(
                f,
                "{} -> {}@{:.0}MHz x{} {} ({:.1} ms, {:.1} mJ{}{})",
                d.app,
                d.cluster_name,
                d.freq.as_mhz(),
                d.point.op.cores,
                d.point.op.level,
                d.point.latency.as_millis(),
                d.point.energy.as_millijoules(),
                if d.sharers > 1 { ", shared" } else { "" },
                if d.violations.is_empty() {
                    ""
                } else {
                    ", VIOLATED"
                },
            )?;
        }
        if !self.gated.is_empty() {
            writeln!(f, "gated: {} clusters", self.gated.len())?;
        }
        write!(
            f,
            "total {:.2} W / cap {:.2} W",
            self.total_power.as_watts(),
            self.power_cap.as_watts()
        )
    }
}

/// RTM configuration.
#[derive(Debug, Clone, Copy)]
pub struct RtmConfig {
    /// Default objective for DNN applications.
    pub objective: Objective,
    /// SoC power cap; `None` means unlimited — thermal management is then
    /// *reactive*: the simulator re-invokes the RTM with an explicit cap
    /// when the die exceeds its limit, exactly the t = 15 s sequence of the
    /// paper's Fig 2.
    pub power_cap: Option<Power>,
    /// Allow partial-core CPU placements.
    pub partial_cores: bool,
    /// Power-gate clusters with no occupants (the paper's DPM device
    /// knob): their idle power drops out of the total.
    pub power_gating: bool,
}

impl Default for RtmConfig {
    fn default() -> Self {
        Self {
            objective: Objective::MaxAccuracyThenMinEnergy,
            power_cap: None,
            partial_cores: true,
            power_gating: false,
        }
    }
}

/// Internal ledger of claimed resources during one allocation pass.
#[derive(Debug, Clone)]
struct Ledger {
    /// Per cluster: (cores in use, pinned OPP, DNN sharers, rigid owner).
    entries: Vec<LedgerEntry>,
}

#[derive(Debug, Clone, Default)]
struct LedgerEntry {
    cores_used: u32,
    pinned_opp: Option<usize>,
    dnn_sharers: usize,
    rigid_owner: bool,
    /// Activity contributed so far, for incremental power accounting.
    activity: f64,
}

impl Ledger {
    fn new(soc: &Soc) -> Self {
        Self {
            entries: vec![LedgerEntry::default(); soc.cluster_count()],
        }
    }

    fn entry(&self, id: ClusterId) -> &LedgerEntry {
        &self.entries[id.index()]
    }

    fn entry_mut(&mut self, id: ClusterId) -> &mut LedgerEntry {
        &mut self.entries[id.index()]
    }

    /// Cluster power at its current occupancy.
    fn cluster_power(&self, soc: &Soc, id: ClusterId) -> Power {
        let spec = soc.cluster(id).expect("ledger ids come from this soc");
        let e = self.entry(id);
        match e.pinned_opp {
            None => spec.power_model().idle_power(),
            Some(opp) => {
                let freq = spec.opps().get(opp).expect("pinned opp valid").freq();
                spec.power_model().power(freq, e.activity)
            }
        }
    }

    /// Total SoC power at current occupancy.
    fn total_power(&self, soc: &Soc) -> Power {
        soc.cluster_ids()
            .map(|id| self.cluster_power(soc, id))
            .sum()
    }
}

/// The runtime resource manager.
#[derive(Debug, Clone)]
pub struct Rtm {
    cfg: RtmConfig,
}

impl Rtm {
    /// Creates an RTM with the given configuration.
    pub fn new(cfg: RtmConfig) -> Self {
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &RtmConfig {
        &self.cfg
    }

    /// Globally allocates `apps` onto `soc`.
    ///
    /// Applications are served in descending priority (ties keep input
    /// order). The result records violations rather than failing: the RTM
    /// always produces *an* allocation, honouring the power cap strictly
    /// and application requirements on a best-effort basis.
    ///
    /// # Errors
    ///
    /// Returns [`RtmError`] only for structural problems (invalid profile
    /// levels, foreign cluster ids) — never for mere infeasibility.
    pub fn allocate(&self, soc: &Soc, apps: &[AppSpec]) -> Result<Allocation> {
        self.allocate_with_feedback(soc, apps, None)
    }

    /// [`Rtm::allocate`] with monitor-learned latency corrections in the
    /// loop: every candidate operating point is evaluated with the
    /// per-cluster multiplicative corrections a [`LatencyFeedback`] has
    /// accumulated from observed-vs-predicted inference latencies, so the
    /// decision reasons about what the clusters *actually* deliver — the
    /// paper's Fig 5 "runtime resource allocation **and adaptation**"
    /// closed at the allocator, not just per decision.
    ///
    /// `feedback = None` (or a feedback with no observations) reduces to
    /// the uncorrected analytic model.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Rtm::allocate`].
    pub fn allocate_with_feedback(
        &self,
        soc: &Soc,
        apps: &[AppSpec],
        feedback: Option<&LatencyFeedback>,
    ) -> Result<Allocation> {
        let cap = self
            .cfg
            .power_cap
            .unwrap_or(Power::from_watts(f64::INFINITY));

        let mut order: Vec<usize> = (0..apps.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(apps[i].priority()));

        let req_of = |name: &str| -> Option<&Requirements> {
            apps.iter().find_map(|a| match a {
                AppSpec::Dnn(d) if d.name == name => Some(&d.requirements),
                _ => None,
            })
        };

        let mut ledger = Ledger::new(soc);
        let mut rigid_allocs = Vec::new();
        let mut dnn_allocs: Vec<DnnAllocation> = Vec::new();
        let mut unplaced = Vec::new();

        for &i in &order {
            match &apps[i] {
                AppSpec::Rigid(spec) => match self.place_rigid(soc, &mut ledger, spec, cap)? {
                    Some(alloc) => rigid_allocs.push(alloc),
                    None => unplaced.push(spec.name.clone()),
                },
                AppSpec::Dnn(spec) => {
                    match self.place_dnn(
                        soc,
                        &mut ledger,
                        spec,
                        cap,
                        &dnn_allocs,
                        &req_of,
                        feedback,
                    )? {
                        Some(alloc) => dnn_allocs.push(alloc),
                        None => unplaced.push(spec.name.clone()),
                    }
                }
            }
        }

        // Final pass: latencies of co-located DNNs reflect the final sharer
        // counts; re-check requirements.
        for alloc in &mut dnn_allocs {
            let sharers = ledger.entry(alloc.point.op.cluster).dnn_sharers.max(1);
            if sharers != alloc.sharers {
                let scale = sharers as f64 / alloc.sharers as f64;
                alloc.point.latency = alloc.point.latency * scale;
                alloc.sharers = sharers;
            }
        }
        // Violations against each app's requirements with final latencies.
        for alloc in &mut dnn_allocs {
            let spec = apps.iter().find_map(|a| match a {
                AppSpec::Dnn(d) if d.name == alloc.app => Some(d),
                _ => None,
            });
            if let Some(spec) = spec {
                alloc.violations = spec.requirements.violations(&alloc.point);
            }
        }

        // DPM: gate clusters nothing landed on.
        let mut gated = Vec::new();
        let mut total_power = ledger.total_power(soc);
        if self.cfg.power_gating {
            for id in soc.cluster_ids() {
                let e = ledger.entry(id);
                if e.pinned_opp.is_none() && !e.rigid_owner && e.dnn_sharers == 0 {
                    gated.push(id);
                    total_power -= soc
                        .cluster(id)
                        .expect("valid id")
                        .power_model()
                        .idle_power();
                }
            }
        }

        Ok(Allocation {
            total_power,
            dnns: dnn_allocs,
            rigid: rigid_allocs,
            unplaced,
            gated,
            power_cap: cap,
        })
    }

    fn place_rigid(
        &self,
        soc: &Soc,
        ledger: &mut Ledger,
        spec: &RigidAppSpec,
        cap: Power,
    ) -> Result<Option<RigidAllocation>> {
        for &kind in &spec.preferred {
            for (id, cluster) in soc.clusters() {
                if cluster.kind() != kind {
                    continue;
                }
                let e = ledger.entry(id);
                if e.rigid_owner || e.dnn_sharers > 0 || e.cores_used > 0 {
                    continue;
                }
                // Highest OPP whose incremental power fits the cap; rigid
                // apps degrade their frequency rather than being refused,
                // and run at the lowest OPP when even that exceeds the cap.
                let before = ledger.total_power(soc);
                let activity = spec.utilization.clamp(0.0, 1.0);
                let mut opp_index = 0;
                for i in (0..cluster.opps().len()).rev() {
                    let freq = cluster.opps().get(i).expect("index in range").freq();
                    let p = cluster.power_model().power(freq, activity);
                    let incr = p - cluster.power_model().idle_power();
                    if before + incr <= cap || i == 0 {
                        opp_index = i;
                        break;
                    }
                }
                {
                    let e = ledger.entry_mut(id);
                    e.rigid_owner = true;
                    e.pinned_opp = Some(opp_index);
                    e.cores_used = cluster.cores();
                    e.activity = activity;
                }
                let after = ledger.total_power(soc);
                return Ok(Some(RigidAllocation {
                    app: spec.name.clone(),
                    cluster: id,
                    cluster_name: cluster.name().to_string(),
                    opp_index,
                    power: after - before,
                }));
            }
        }
        Ok(None)
    }

    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn place_dnn<'r>(
        &self,
        soc: &Soc,
        ledger: &mut Ledger,
        spec: &DnnAppSpec,
        cap: Power,
        existing: &[DnnAllocation],
        req_of: &dyn Fn(&str) -> Option<&'r Requirements>,
        feedback: Option<&LatencyFeedback>,
    ) -> Result<Option<DnnAllocation>> {
        let objective = spec.objective.unwrap_or(self.cfg.objective);
        let mut best: Option<(CandidateScore, EvaluatedPoint, usize)> = None;

        for (id, cluster) in soc.clusters() {
            let entry = ledger.entry(id).clone();
            if entry.rigid_owner {
                continue;
            }
            let is_accel = cluster.kind().is_accelerator();
            let free_cores = cluster.cores() - entry.cores_used;
            if !is_accel && free_cores == 0 {
                continue;
            }

            // Build the restricted space for this cluster.
            let mut cfg = OpSpaceConfig::default().with_clusters(vec![id]);
            let sharers_after = entry.dnn_sharers + 1;
            if let Some(opp) = entry.pinned_opp {
                cfg = cfg.with_opp_restriction(id, vec![opp]);
            }
            if is_accel {
                if sharers_after > 1 {
                    cfg = cfg.with_sharing_penalty(id, sharers_after as f64);
                }
            } else if self.cfg.partial_cores {
                cfg = cfg.with_partial_cores();
            }
            if let Some(fb) = feedback {
                // Monitor-learned corrections compose multiplicatively
                // with the sharing penalty already in the config.
                cfg = fb.apply(cfg);
            }
            let space = match OpSpace::new(soc, &spec.profile, cfg) {
                Ok(s) => s,
                Err(RtmError::EmptySpace { .. }) => continue,
                Err(e) => return Err(e),
            };

            for op in space.iter() {
                // CPU clusters: only as many cores as are free.
                if !is_accel && op.cores > free_cores {
                    continue;
                }
                let pt = space.evaluate(op)?;

                // Sharing admission: co-runners on this cluster must stay
                // feasible with one more sharer.
                if is_accel && entry.dnn_sharers > 0 {
                    let breaks_corunner = existing.iter().any(|other| {
                        if other.point.op.cluster != id {
                            return false;
                        }
                        let scaled =
                            other.point.latency * (sharers_after as f64 / other.sharers as f64);
                        let mut hyp = other.point;
                        hyp.latency = scaled;
                        match req_of(&other.app) {
                            // A co-runner that was feasible must remain so.
                            Some(req) => !req.violations(&hyp).is_empty(),
                            None => false,
                        }
                    });
                    if breaks_corunner {
                        continue;
                    }
                }

                // Power admission: strict cap.
                let incremental = self.incremental_power(soc, ledger, id, op, is_accel);
                let total_after = ledger.total_power(soc) + incremental;
                if total_after > cap {
                    continue;
                }

                let score = CandidateScore::new(&spec.requirements, objective, &pt);
                let better = match &best {
                    None => true,
                    Some((bs, _, _)) => score < *bs,
                };
                if better {
                    best = Some((score, pt, sharers_after));
                }
            }
        }

        let Some((_, pt, sharers)) = best else {
            return Ok(None);
        };
        let id = pt.op.cluster;
        let cluster = soc.cluster(id)?;
        let is_accel = cluster.kind().is_accelerator();
        {
            let e = ledger.entry_mut(id);
            e.pinned_opp = Some(pt.op.opp_index);
            if is_accel {
                e.dnn_sharers += 1;
                e.activity = 1.0;
            } else {
                e.cores_used += pt.op.cores;
                e.dnn_sharers += 1;
                e.activity = e.cores_used as f64 / cluster.cores() as f64;
            }
        }
        let freq = cluster
            .opps()
            .get(pt.op.opp_index)
            .expect("opp valid")
            .freq();
        Ok(Some(DnnAllocation {
            app: spec.name.clone(),
            violations: spec.requirements.violations(&pt),
            point: pt,
            cluster_name: cluster.name().to_string(),
            freq,
            sharers,
        }))
    }

    fn incremental_power(
        &self,
        soc: &Soc,
        ledger: &Ledger,
        id: ClusterId,
        op: OperatingPoint,
        is_accel: bool,
    ) -> Power {
        let spec = soc.cluster(id).expect("valid id");
        let entry = ledger.entry(id);
        let freq = spec
            .opps()
            .get(op.opp_index)
            .expect("op enumerated from table")
            .freq();
        let new_activity = if is_accel {
            1.0
        } else {
            (entry.cores_used + op.cores) as f64 / spec.cores() as f64
        };
        let before = ledger.cluster_power(soc, id);
        let after = spec.power_model().power(freq, new_activity);
        after - before
    }
}

/// Ranking of a candidate: feasible first, then smallest normalised
/// constraint excess, then objective score.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CandidateScore {
    infeasible: bool,
    excess: f64,
    objective: f64,
}

impl CandidateScore {
    fn new(req: &Requirements, objective: Objective, pt: &EvaluatedPoint) -> Self {
        let excess = req.violation_excess(pt);
        Self {
            infeasible: excess > 0.0,
            excess,
            objective: objective.score(pt),
        }
    }
}

impl PartialOrd for CandidateScore {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(
            self.infeasible
                .cmp(&other.infeasible)
                .then(
                    self.excess
                        .partial_cmp(&other.excess)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(
                    self.objective
                        .partial_cmp(&other.objective)
                        .unwrap_or(std::cmp::Ordering::Equal),
                ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eml_platform::presets;
    use eml_platform::units::TimeSpan;

    fn dnn(name: &str, scale: f64, latency_ms: f64, priority: u8) -> AppSpec {
        let base = DnnProfile::reference(name);
        let profile = if (scale - 1.0).abs() < 1e-12 {
            base
        } else {
            scaled_profile(name, scale)
        };
        AppSpec::Dnn(DnnAppSpec {
            name: name.to_string(),
            profile,
            requirements: Requirements::new().with_max_latency(TimeSpan::from_millis(latency_ms)),
            priority,
            objective: None,
        })
    }

    fn scaled_profile(name: &str, scale: f64) -> DnnProfile {
        use eml_dnn::profile::LevelSpec;
        let base = presets::reference_workload();
        let levels = eml_platform::paper::WIDTH_LEVELS
            .iter()
            .zip(eml_platform::paper::FIG4B_TOP1)
            .map(|(&frac, top1)| LevelSpec {
                cost_fraction: frac,
                workload: base.scaled(frac * scale),
                top1_percent: top1,
                param_bytes: base.param_bytes() * frac * scale,
            })
            .collect();
        DnnProfile::new(name, levels, base.param_bytes() * scale).unwrap()
    }

    fn vr_app(priority: u8) -> AppSpec {
        AppSpec::Rigid(RigidAppSpec {
            name: "vr-ar".to_string(),
            preferred: vec![CoreKind::Gpu],
            utilization: 0.9,
            priority,
        })
    }

    #[test]
    fn single_dnn_takes_the_npu() {
        // Fig 2(a): one DNN alone picks the NPU (fastest, most efficient).
        let soc = presets::flagship();
        let rtm = Rtm::new(RtmConfig::default());
        let alloc = rtm.allocate(&soc, &[dnn("dnn1", 1.0, 11.0, 1)]).unwrap();
        assert!(alloc.fully_feasible(), "{alloc}");
        assert_eq!(alloc.dnn("dnn1").unwrap().cluster_name, "npu");
        assert_eq!(alloc.dnn("dnn1").unwrap().point.op.level.index(), 3);
    }

    #[test]
    fn second_heavier_dnn_displaces_first_to_gpu_with_compression() {
        // Fig 2(b): the heavier, higher-priority DNN2 takes the NPU
        // exclusively; DNN1 migrates to the GPU and compresses to meet its
        // latency budget.
        let soc = presets::flagship();
        let rtm = Rtm::new(RtmConfig::default());
        let apps = [dnn("dnn1", 1.0, 11.0, 1), dnn("dnn2", 4.0, 16.7, 2)];
        let alloc = rtm.allocate(&soc, &apps).unwrap();
        assert!(alloc.fully_feasible(), "{alloc}");
        let d2 = alloc.dnn("dnn2").unwrap();
        assert_eq!(d2.cluster_name, "npu");
        assert_eq!(d2.sharers, 1, "NPU must stay exclusive: {alloc}");
        assert_eq!(d2.point.op.level.index(), 3);
        let d1 = alloc.dnn("dnn1").unwrap();
        assert_eq!(d1.cluster_name, "gpu", "{alloc}");
        assert!(
            d1.point.op.level.index() < 3,
            "dnn1 must compress on the GPU: {alloc}"
        );
    }

    #[test]
    fn vr_app_claims_gpu_and_dnn_falls_back_to_cpu() {
        // Fig 2(c) first phase: VR/AR (rigid, highest priority) takes the
        // GPU; DNN1 ends up on the big CPU cluster using all four cores.
        let soc = presets::flagship();
        let rtm = Rtm::new(RtmConfig::default());
        let apps = [
            dnn("dnn1", 1.0, 11.0, 1),
            dnn("dnn2", 4.0, 16.7, 2),
            vr_app(3),
        ];
        let alloc = rtm.allocate(&soc, &apps).unwrap();
        let vr = alloc.rigid_app("vr-ar").unwrap();
        assert_eq!(vr.cluster_name, "gpu");
        let d1 = alloc.dnn("dnn1").unwrap();
        assert_eq!(d1.cluster_name, "big", "{alloc}");
        assert_eq!(d1.point.op.cores, 4, "{alloc}");
    }

    #[test]
    fn thermal_cap_forces_core_reduction_and_latency_sacrifice() {
        // Fig 2(c) second phase: under a tightened power cap the RTM keeps
        // the device safe (cap honoured strictly) and degrades DNN1 to a
        // reduced-core big-CPU placement, accepting a latency violation.
        //
        // Reproduction note (also recorded in EXPERIMENTS.md): the paper's
        // narrative throttles to a *single* core; our allocator instead
        // finds that fewer-but-more-than-one slow cores give strictly less
        // latency at the same power under the calibrated model. The claim
        // being reproduced — the thermal budget is honoured by compressing
        // the DNN and shrinking its core allocation — holds either way.
        let soc = presets::flagship();
        let sustainable = soc.thermal().sustainable_power();
        let rtm = Rtm::new(RtmConfig {
            power_cap: Some(sustainable * 0.6),
            ..RtmConfig::default()
        });
        let apps = [
            dnn("dnn1", 1.0, 11.0, 1),
            dnn("dnn2", 4.0, 16.7, 2),
            vr_app(3),
        ];
        let alloc = rtm.allocate(&soc, &apps).unwrap();
        let d1 = alloc.dnn("dnn1").unwrap();
        assert_eq!(d1.cluster_name, "big", "{alloc}");
        assert!(
            d1.point.op.cores < 4,
            "core allocation must shrink: {alloc}"
        );
        assert_eq!(d1.point.op.level.index(), 0, "compressed to 25%: {alloc}");
        assert!(!d1.violations.is_empty(), "latency is sacrificed: {alloc}");
        assert!(alloc.total_power <= alloc.power_cap, "{alloc}");
    }

    #[test]
    fn relaxed_accuracy_lets_both_dnns_share_the_npu() {
        // Fig 2(d): DNN2's accuracy requirement drops and its objective
        // becomes energy; it compresses, freeing NPU time, and DNN1 joins
        // it on the NPU at full width.
        let soc = presets::flagship();
        let rtm = Rtm::new(RtmConfig::default());
        let mut apps = vec![dnn("dnn1", 1.0, 11.0, 1), dnn("dnn2", 4.0, 16.7, 2)];
        if let AppSpec::Dnn(d2) = &mut apps[1] {
            d2.requirements = Requirements::new()
                .with_max_latency(TimeSpan::from_millis(16.7))
                .with_min_top1(55.0);
            d2.objective = Some(Objective::MinEnergy);
        }
        let alloc = rtm.allocate(&soc, &apps).unwrap();
        let d2 = alloc.dnn("dnn2").unwrap();
        let d1 = alloc.dnn("dnn1").unwrap();
        assert_eq!(d2.cluster_name, "npu", "{alloc}");
        assert!(d2.point.op.level.index() < 3, "dnn2 compresses: {alloc}");
        assert_eq!(d1.cluster_name, "npu", "both share the NPU: {alloc}");
        assert_eq!(
            d1.point.op.level.index(),
            3,
            "dnn1 recovers accuracy: {alloc}"
        );
        assert_eq!(d1.sharers, 2, "{alloc}");
        assert!(alloc.fully_feasible(), "{alloc}");
    }

    #[test]
    fn priority_orders_service() {
        let soc = presets::flagship();
        let rtm = Rtm::new(RtmConfig::default());
        // Two identical DNNs, different priorities: the higher one gets the
        // NPU.
        let apps = [dnn("lo", 4.0, 16.7, 1), dnn("hi", 4.0, 16.7, 9)];
        let alloc = rtm.allocate(&soc, &apps).unwrap();
        assert_eq!(alloc.dnn("hi").unwrap().cluster_name, "npu", "{alloc}");
        assert_ne!(alloc.dnn("lo").unwrap().cluster_name, "npu", "{alloc}");
    }

    #[test]
    fn rigid_app_without_matching_cluster_is_unplaced() {
        let soc = presets::odroid_xu3();
        let rtm = Rtm::new(RtmConfig::default());
        let apps = [AppSpec::Rigid(RigidAppSpec {
            name: "npu-only".into(),
            preferred: vec![CoreKind::Npu],
            utilization: 1.0,
            priority: 5,
        })];
        let alloc = rtm.allocate(&soc, &apps).unwrap();
        assert_eq!(alloc.unplaced, vec!["npu-only".to_string()]);
        assert!(!alloc.fully_feasible());
    }

    #[test]
    fn empty_app_list_is_idle() {
        let soc = presets::flagship();
        let rtm = Rtm::new(RtmConfig::default());
        let alloc = rtm.allocate(&soc, &[]).unwrap();
        assert!(alloc.dnns.is_empty() && alloc.rigid.is_empty());
        assert!((alloc.total_power.as_watts() - soc.idle_power().as_watts()).abs() < 1e-9);
    }

    #[test]
    fn power_cap_is_never_exceeded_by_dnn_placements() {
        let soc = presets::flagship();
        for cap_frac in [0.4, 0.6, 0.8, 1.0] {
            let cap = soc.thermal().sustainable_power() * cap_frac;
            let rtm = Rtm::new(RtmConfig {
                power_cap: Some(cap),
                ..RtmConfig::default()
            });
            let apps = [dnn("a", 1.0, 50.0, 1), dnn("b", 1.0, 50.0, 2)];
            let alloc = rtm.allocate(&soc, &apps).unwrap();
            assert!(
                alloc.total_power <= alloc.power_cap + Power::from_milliwatts(1.0),
                "cap {cap_frac}: {alloc}"
            );
        }
    }

    #[test]
    fn power_gating_drops_idle_power_of_unused_clusters() {
        let soc = presets::flagship();
        let apps = [dnn("dnn1", 1.0, 11.0, 1)];
        let plain = Rtm::new(RtmConfig::default())
            .allocate(&soc, &apps)
            .unwrap();
        let gated = Rtm::new(RtmConfig {
            power_gating: true,
            ..RtmConfig::default()
        })
        .allocate(&soc, &apps)
        .unwrap();
        assert!(plain.gated.is_empty());
        // dnn1 occupies exactly one cluster; the other four are gated.
        assert_eq!(gated.gated.len(), soc.cluster_count() - 1);
        assert!(
            gated.total_power < plain.total_power,
            "{gated}\nvs\n{plain}"
        );
        // Saving equals the gated clusters' idle power.
        let saved: Power = gated
            .gated
            .iter()
            .map(|&id| soc.cluster(id).unwrap().power_model().idle_power())
            .sum();
        let diff = plain.total_power - gated.total_power;
        assert!((diff.as_watts() - saved.as_watts()).abs() < 1e-9);
    }

    #[test]
    fn power_gating_never_gates_occupied_clusters() {
        let soc = presets::flagship();
        let apps = [
            dnn("dnn1", 1.0, 11.0, 1),
            dnn("dnn2", 4.0, 16.7, 2),
            vr_app(3),
        ];
        let alloc = Rtm::new(RtmConfig {
            power_gating: true,
            ..RtmConfig::default()
        })
        .allocate(&soc, &apps)
        .unwrap();
        let occupied: Vec<ClusterId> = alloc
            .dnns
            .iter()
            .map(|d| d.point.op.cluster)
            .chain(alloc.rigid.iter().map(|r| r.cluster))
            .collect();
        for g in &alloc.gated {
            assert!(!occupied.contains(g), "gated an occupied cluster: {alloc}");
        }
        assert_eq!(alloc.gated.len() + occupied.len(), soc.cluster_count());
    }

    #[test]
    fn case_study_via_rtm_on_xu3() {
        // The single-app §IV case study also falls out of the multi-app
        // allocator when the XU3 CPU clusters are the only options.
        let soc = presets::odroid_xu3();
        let rtm = Rtm::new(RtmConfig {
            partial_cores: false,
            ..RtmConfig::default()
        });
        let mut app = match dnn("dnn", 1.0, 400.0, 1) {
            AppSpec::Dnn(d) => d,
            _ => unreachable!(),
        };
        app.requirements = Requirements::new()
            .with_max_latency(TimeSpan::from_millis(400.0))
            .with_max_energy(eml_platform::units::Energy::from_millijoules(100.0));
        // Restrict to CPUs by making the GPU unattractive? The GPU is
        // actually feasible and efficient here, so just assert feasibility
        // and that a CPU point would also have been valid.
        let alloc = rtm.allocate(&soc, &[AppSpec::Dnn(app)]).unwrap();
        assert!(alloc.fully_feasible(), "{alloc}");
    }
}
