//! Governors: decision policies that pick an operating point satisfying an
//! application's requirements.
//!
//! Three policies with different decision-latency/quality trade-offs (an
//! ablation the benches quantify):
//!
//! - [`ExhaustiveGovernor`] — the oracle: evaluates every point, returns
//!   the true optimum. `O(|space|)` per decision.
//! - [`ParetoGovernor`] — pre-computes the Pareto frontier once, then scans
//!   only the frontier per decision. Optimal for objectives monotone in
//!   (latency, energy, accuracy), which all built-in objectives are.
//! - [`GreedyGovernor`] — hill-climbs the (mapping, DVFS, width) lattice
//!   from a handful of seeds; `O(steps)` evaluations, near-optimal in
//!   practice, can miss the global optimum on non-convex spaces.

use eml_dnn::WidthLevel;

use crate::error::Result;
use crate::objective::Objective;
use crate::opspace::{EvaluatedPoint, OpSpace, OperatingPoint};
use crate::pareto::pareto_front;
use crate::requirements::Requirements;

/// A decision policy over an operating-point space.
pub trait Governor {
    /// The policy's name (for traces and reports).
    fn name(&self) -> &str;

    /// Picks the best feasible point, or `None` when no point satisfies
    /// `req`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from the space.
    fn decide(
        &mut self,
        space: &OpSpace<'_>,
        req: &Requirements,
        objective: Objective,
    ) -> Result<Option<EvaluatedPoint>>;
}

/// The oracle: exhaustive search over the whole space.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustiveGovernor;

impl Governor for ExhaustiveGovernor {
    fn name(&self) -> &str {
        "exhaustive"
    }

    fn decide(
        &mut self,
        space: &OpSpace<'_>,
        req: &Requirements,
        objective: Objective,
    ) -> Result<Option<EvaluatedPoint>> {
        let mut best: Option<EvaluatedPoint> = None;
        for op in space.iter() {
            let pt = space.evaluate(op)?;
            if !req.satisfied_by(&pt) {
                continue;
            }
            best = match best {
                None => Some(pt),
                Some(b) => {
                    if objective.compare(&pt, &b).is_lt() {
                        Some(pt)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        Ok(best)
    }
}

/// Pareto-cache governor: evaluates the space once, keeps only the
/// non-dominated frontier, and answers subsequent decisions by scanning the
/// frontier.
///
/// The cache is keyed by nothing — construct one governor per
/// (SoC, profile, restrictions) combination, or call
/// [`ParetoGovernor::invalidate`] when the space changes.
#[derive(Debug, Clone, Default)]
pub struct ParetoGovernor {
    frontier: Option<Vec<EvaluatedPoint>>,
}

impl ParetoGovernor {
    /// Creates an empty (not yet prepared) governor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the cached frontier (call when the space changes, e.g. after
    /// a DVFS-domain restriction appears).
    pub fn invalidate(&mut self) {
        self.frontier = None;
    }

    /// Number of cached frontier points (0 before first decision).
    pub fn frontier_len(&self) -> usize {
        self.frontier.as_ref().map_or(0, Vec::len)
    }
}

impl Governor for ParetoGovernor {
    fn name(&self) -> &str {
        "pareto"
    }

    fn decide(
        &mut self,
        space: &OpSpace<'_>,
        req: &Requirements,
        objective: Objective,
    ) -> Result<Option<EvaluatedPoint>> {
        if self.frontier.is_none() {
            let all = space.evaluate_all()?;
            self.frontier = Some(pareto_front(&all));
        }
        let frontier = self.frontier.as_ref().expect("just populated");
        Ok(objective
            .best(frontier.iter().filter(|pt| req.satisfied_by(pt)))
            .copied())
    }
}

/// Greedy hill-climbing governor.
///
/// Starts from several seeds (one per cluster, at the highest width and a
/// mid OPP) and repeatedly moves to the best feasible neighbour (±1 OPP,
/// ±1 width level, ±1 core) until no neighbour improves the objective.
/// Infeasible points are penalised by their violation count, so the search
/// can walk *through* lightly infeasible regions toward feasibility.
#[derive(Debug, Clone, Copy)]
pub struct GreedyGovernor {
    /// Maximum hill-climbing steps per seed (safety bound).
    pub max_steps: usize,
}

impl Default for GreedyGovernor {
    fn default() -> Self {
        Self { max_steps: 64 }
    }
}

impl GreedyGovernor {
    fn penalised_score(objective: Objective, req: &Requirements, pt: &EvaluatedPoint) -> f64 {
        // Infeasibility dominates; its *magnitude* (normalised excess)
        // gives the climb a gradient toward the feasible region, so the
        // search does not stall at the feasibility boundary chasing the
        // objective.
        let violations = req.violations(pt).len() as f64;
        objective.score(pt) + violations * 1.0e12 + req.violation_excess(pt) * 1.0e9
    }

    fn neighbours(space: &OpSpace<'_>, op: OperatingPoint) -> Vec<OperatingPoint> {
        let mut out = Vec::with_capacity(8);
        let spec = space
            .soc()
            .cluster(op.cluster)
            .expect("ops enumerated from this soc");
        if op.opp_index > 0 {
            out.push(OperatingPoint {
                opp_index: op.opp_index - 1,
                ..op
            });
        }
        if op.opp_index + 1 < spec.opps().len() {
            out.push(OperatingPoint {
                opp_index: op.opp_index + 1,
                ..op
            });
        }
        if op.level.index() > 0 {
            out.push(OperatingPoint {
                level: WidthLevel(op.level.index() - 1),
                ..op
            });
        }
        if op.level.index() + 1 < space.profile().level_count() {
            out.push(OperatingPoint {
                level: WidthLevel(op.level.index() + 1),
                ..op
            });
        }
        if op.cores > 1 {
            out.push(OperatingPoint {
                cores: op.cores - 1,
                ..op
            });
        }
        if op.cores < spec.cores() {
            out.push(OperatingPoint {
                cores: op.cores + 1,
                ..op
            });
        }
        // Stay within the configured space: `evaluate` would happily
        // predict e.g. partial-core points even when the space only
        // enumerates whole clusters.
        out.retain(|&n| space.contains(n));
        out
    }

    fn seeds(space: &OpSpace<'_>) -> Vec<OperatingPoint> {
        // Two seeds per cluster at maximum width: the lowest and the
        // highest enumerated OPP. Starting from both frequency extremes
        // lets the climb approach the feasible region from either side.
        let mut seeds: Vec<OperatingPoint> = Vec::new();
        for op in space.iter() {
            if op.level.index() + 1 != space.profile().level_count() {
                continue;
            }
            match seeds
                .iter()
                .position(|s| s.cluster == op.cluster && s.cores == op.cores)
            {
                None => {
                    seeds.push(op); // lowest OPP seen for this cluster
                    seeds.push(op); // placeholder for the highest
                }
                Some(i) => seeds[i + 1] = op, // keep updating the highest
            }
        }
        seeds.dedup();
        seeds
    }
}

impl Governor for GreedyGovernor {
    fn name(&self) -> &str {
        "greedy"
    }

    fn decide(
        &mut self,
        space: &OpSpace<'_>,
        req: &Requirements,
        objective: Objective,
    ) -> Result<Option<EvaluatedPoint>> {
        let mut best: Option<(f64, EvaluatedPoint)> = None;
        for seed in Self::seeds(space) {
            let mut current = space.evaluate(seed)?;
            let mut current_score = Self::penalised_score(objective, req, &current);
            for _ in 0..self.max_steps {
                let mut improved = false;
                for n in Self::neighbours(space, current.op) {
                    let pt = space.evaluate(n)?;
                    let s = Self::penalised_score(objective, req, &pt);
                    if s < current_score {
                        current = pt;
                        current_score = s;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
            if req.satisfied_by(&current) {
                match &best {
                    None => best = Some((current_score, current)),
                    Some((bs, _)) if current_score < *bs => best = Some((current_score, current)),
                    _ => {}
                }
            }
        }
        Ok(best.map(|(_, pt)| pt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opspace::OpSpaceConfig;
    use eml_dnn::profile::DnnProfile;
    use eml_platform::paper;
    use eml_platform::presets;
    use eml_platform::units::{Energy, Freq, TimeSpan};
    use eml_platform::Soc;

    fn xu3_cpu_space<'a>(soc: &'a Soc, profile: &'a DnnProfile) -> OpSpace<'a> {
        let cpu = vec![
            soc.find_cluster("a15").unwrap(),
            soc.find_cluster("a7").unwrap(),
        ];
        OpSpace::new(soc, profile, OpSpaceConfig::default().with_clusters(cpu)).unwrap()
    }

    fn budget_req(b: &paper::CaseStudyBudget) -> Requirements {
        Requirements::new()
            .with_max_latency(TimeSpan::from_millis(b.time_ms))
            .with_max_energy(Energy::from_millijoules(b.energy_mj))
    }

    /// The paper's §IV worked example, budget 1: (400 ms, 100 mJ) must
    /// select the 100 % model on the A7 at 900 MHz.
    #[test]
    fn case_study_budget_one_reproduced() {
        let soc = presets::odroid_xu3();
        let profile = DnnProfile::reference("dnn");
        let space = xu3_cpu_space(&soc, &profile);
        let b = paper::CASE_STUDY_BUDGET_1;
        let pt = ExhaustiveGovernor
            .decide(&space, &budget_req(&b), Objective::MaxAccuracyThenMinEnergy)
            .unwrap()
            .expect("budget 1 is feasible");
        let cluster = soc.cluster(pt.op.cluster).unwrap();
        let freq = cluster.opps().get(pt.op.opp_index).unwrap().freq();
        assert_eq!(cluster.name(), b.expect_cluster, "{pt}");
        assert_eq!(freq, Freq::from_mhz(b.expect_freq_mhz), "{pt}");
        assert_eq!(pt.op.level, WidthLevel(3), "{pt}");
    }

    /// Budget 2: (200 ms, 150 mJ) must select the 75 % model on the A15 at
    /// 1 GHz.
    #[test]
    fn case_study_budget_two_reproduced() {
        let soc = presets::odroid_xu3();
        let profile = DnnProfile::reference("dnn");
        let space = xu3_cpu_space(&soc, &profile);
        let b = paper::CASE_STUDY_BUDGET_2;
        let pt = ExhaustiveGovernor
            .decide(&space, &budget_req(&b), Objective::MaxAccuracyThenMinEnergy)
            .unwrap()
            .expect("budget 2 is feasible");
        let cluster = soc.cluster(pt.op.cluster).unwrap();
        let freq = cluster.opps().get(pt.op.opp_index).unwrap().freq();
        assert_eq!(cluster.name(), b.expect_cluster, "{pt}");
        assert_eq!(freq, Freq::from_mhz(b.expect_freq_mhz), "{pt}");
        assert_eq!(pt.op.level, WidthLevel(2), "{pt}");
    }

    #[test]
    fn pareto_governor_matches_oracle() {
        let soc = presets::odroid_xu3();
        let profile = DnnProfile::reference("dnn");
        let space = xu3_cpu_space(&soc, &profile);
        let mut pareto = ParetoGovernor::new();
        for b in [paper::CASE_STUDY_BUDGET_1, paper::CASE_STUDY_BUDGET_2] {
            let req = budget_req(&b);
            let oracle = ExhaustiveGovernor
                .decide(&space, &req, Objective::MaxAccuracyThenMinEnergy)
                .unwrap();
            let cached = pareto
                .decide(&space, &req, Objective::MaxAccuracyThenMinEnergy)
                .unwrap();
            assert_eq!(oracle.map(|p| p.op), cached.map(|p| p.op));
        }
        assert!(pareto.frontier_len() > 0);
    }

    #[test]
    fn pareto_invalidate_clears_cache() {
        let soc = presets::odroid_xu3();
        let profile = DnnProfile::reference("dnn");
        let space = xu3_cpu_space(&soc, &profile);
        let mut g = ParetoGovernor::new();
        let _ = g
            .decide(&space, &Requirements::new(), Objective::MinEnergy)
            .unwrap();
        assert!(g.frontier_len() > 0);
        g.invalidate();
        assert_eq!(g.frontier_len(), 0);
    }

    #[test]
    fn greedy_governor_finds_feasible_near_optimum() {
        let soc = presets::odroid_xu3();
        let profile = DnnProfile::reference("dnn");
        let space = xu3_cpu_space(&soc, &profile);
        let mut greedy = GreedyGovernor::default();
        for b in [paper::CASE_STUDY_BUDGET_1, paper::CASE_STUDY_BUDGET_2] {
            let req = budget_req(&b);
            let pt = greedy
                .decide(&space, &req, Objective::MaxAccuracyThenMinEnergy)
                .unwrap()
                .expect("greedy must find a feasible point");
            assert!(req.satisfied_by(&pt));
            // Quality: within one accuracy level of the oracle.
            let oracle = ExhaustiveGovernor
                .decide(&space, &req, Objective::MaxAccuracyThenMinEnergy)
                .unwrap()
                .unwrap();
            assert!(pt.top1_percent >= oracle.top1_percent - 7.0);
        }
    }

    #[test]
    fn infeasible_requirements_yield_none() {
        let soc = presets::odroid_xu3();
        let profile = DnnProfile::reference("dnn");
        let space = xu3_cpu_space(&soc, &profile);
        let impossible = Requirements::new()
            .with_max_latency(TimeSpan::from_millis(0.001))
            .with_max_energy(Energy::from_millijoules(0.001));
        for g in [
            &mut ExhaustiveGovernor as &mut dyn Governor,
            &mut ParetoGovernor::new(),
            &mut GreedyGovernor::default(),
        ] {
            assert!(g
                .decide(&space, &impossible, Objective::MaxAccuracyThenMinEnergy)
                .unwrap()
                .is_none());
        }
    }

    #[test]
    fn unconstrained_paper_objective_picks_full_width() {
        let soc = presets::odroid_xu3();
        let profile = DnnProfile::reference("dnn");
        let space = xu3_cpu_space(&soc, &profile);
        let pt = ExhaustiveGovernor
            .decide(
                &space,
                &Requirements::new(),
                Objective::MaxAccuracyThenMinEnergy,
            )
            .unwrap()
            .unwrap();
        assert_eq!(pt.op.level, WidthLevel(3));
        // Min-energy full-width point lives on the A7 (Table I shape).
        assert_eq!(soc.cluster(pt.op.cluster).unwrap().name(), "a7");
    }
}
