//! Knobs and monitors: the PRiME-style control interface of the paper's
//! Fig 5.
//!
//! The RTM does not touch applications or hardware directly — it reads
//! *monitors* (accuracy, confidence, latency, frame rate; power,
//! temperature, performance counters) and writes *knobs* (DNN width, DVFS
//! level, task mapping, power gating). This module defines those vocabulary
//! types and the translation from an [`Allocation`] decision to a concrete
//! actuation list, which the simulator (or a real platform shim) executes.

use std::fmt;

use eml_dnn::{DynamicDnn, Precision, WidthLevel};
use eml_platform::soc::ClusterId;

use crate::error::Result;
use crate::rtm::Allocation;

/// What a monitor measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum MonitorKind {
    /// Application: end-to-end inference latency (seconds).
    Latency,
    /// Application: achieved frame rate (frames/second).
    FrameRate,
    /// Application: expected top-1 accuracy (percent).
    Accuracy,
    /// Application: mean softmax confidence (0..1).
    Confidence,
    /// Device: power draw (watts).
    Power,
    /// Device: die temperature (degrees Celsius).
    Temperature,
    /// Device: cluster utilisation (0..1).
    Utilization,
}

impl MonitorKind {
    /// Whether this is an application-layer monitor (platform-independent)
    /// as opposed to a device-layer monitor.
    pub fn is_application(self) -> bool {
        matches!(
            self,
            Self::Latency | Self::FrameRate | Self::Accuracy | Self::Confidence
        )
    }
}

/// One monitor sample.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorReading {
    /// What is being measured.
    pub kind: MonitorKind,
    /// Where it came from (application or cluster name).
    pub source: String,
    /// The value, in the unit documented on [`MonitorKind`].
    pub value: f64,
    /// Simulation time of the sample, in seconds.
    pub at_secs: f64,
}

impl fmt::Display for MonitorReading {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:8.3}s] {}/{:?} = {:.3}",
            self.at_secs, self.source, self.kind, self.value
        )
    }
}

/// One actuation the RTM issues to the application or device layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum KnobCommand {
    /// Application knob: set a dynamic DNN's width level.
    SetWidth {
        /// Application name.
        app: String,
        /// Target width level.
        level: WidthLevel,
    },
    /// Application knob: set a dynamic DNN's data-precision mode
    /// (executed int8 vs full `f32` — see
    /// [`eml_dnn::DynamicDnn::set_precision`]). The allocator does not
    /// yet place precision in its operating-point search, so
    /// [`commands_for`] never emits this; it is the vocabulary an RTM
    /// policy issues directly and [`apply_app_command`] executes.
    SetPrecision {
        /// Application name.
        app: String,
        /// Target precision mode.
        precision: Precision,
    },
    /// Device knob: map an application onto a cluster with a core count.
    Map {
        /// Application name.
        app: String,
        /// Target cluster.
        cluster: ClusterId,
        /// Cores to use.
        cores: u32,
    },
    /// Device knob: set a cluster's DVFS operating point.
    SetOpp {
        /// Target cluster.
        cluster: ClusterId,
        /// OPP index.
        opp_index: usize,
    },
    /// Device knob: clock/power-gate an unused cluster.
    Gate {
        /// Target cluster.
        cluster: ClusterId,
        /// `true` to gate, `false` to ungate.
        gated: bool,
    },
}

/// Translates an allocation into the ordered knob commands that realise it.
///
/// Order: DVFS first (so mappings land on correctly clocked clusters), then
/// mappings, then width levels — mirroring how a real RTM avoids transient
/// deadline violations during reconfiguration.
pub fn commands_for(allocation: &Allocation) -> Vec<KnobCommand> {
    let mut cmds = Vec::new();
    let mut seen_opp: Vec<(ClusterId, usize)> = Vec::new();
    for d in &allocation.dnns {
        let pair = (d.point.op.cluster, d.point.op.opp_index);
        if !seen_opp.contains(&pair) {
            seen_opp.push(pair);
            cmds.push(KnobCommand::SetOpp {
                cluster: pair.0,
                opp_index: pair.1,
            });
        }
    }
    for r in &allocation.rigid {
        let pair = (r.cluster, r.opp_index);
        if !seen_opp.contains(&pair) {
            seen_opp.push(pair);
            cmds.push(KnobCommand::SetOpp {
                cluster: pair.0,
                opp_index: pair.1,
            });
        }
    }
    for d in &allocation.dnns {
        cmds.push(KnobCommand::Map {
            app: d.app.clone(),
            cluster: d.point.op.cluster,
            cores: d.point.op.cores,
        });
    }
    for d in &allocation.dnns {
        cmds.push(KnobCommand::SetWidth {
            app: d.app.clone(),
            level: d.point.op.level,
        });
    }
    for &cluster in &allocation.gated {
        cmds.push(KnobCommand::Gate {
            cluster,
            gated: true,
        });
    }
    cmds
}

/// Executes one command's *application-layer* part against the dynamic
/// DNN backing `app`: [`KnobCommand::SetWidth`] switches the width
/// level, [`KnobCommand::SetPrecision`] the data-precision mode.
/// Returns `true` when the command addressed `app` with an application
/// knob; device knobs ([`KnobCommand::Map`] / [`KnobCommand::SetOpp`] /
/// [`KnobCommand::Gate`]) and commands for other apps return `false`
/// untouched — they belong to the device layer. This is the shim a
/// real platform (or a test harness) uses to actuate an RTM decision
/// on live models.
///
/// # Errors
///
/// Propagates the width-switch error of an out-of-range
/// [`KnobCommand::SetWidth`] level.
pub fn apply_app_command(cmd: &KnobCommand, app: &str, dnn: &mut DynamicDnn) -> Result<bool> {
    match cmd {
        KnobCommand::SetWidth { app: a, level } if a == app => {
            dnn.set_level(*level)?;
            Ok(true)
        }
        KnobCommand::SetPrecision { app: a, precision } if a == app => {
            dnn.set_precision(*precision);
            Ok(true)
        }
        _ => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;
    use crate::requirements::Requirements;
    use crate::rtm::{AppSpec, DnnAppSpec, Rtm, RtmConfig};
    use eml_dnn::profile::DnnProfile;
    use eml_platform::presets;
    use eml_platform::units::TimeSpan;

    #[test]
    fn monitor_layers() {
        assert!(MonitorKind::Accuracy.is_application());
        assert!(MonitorKind::Confidence.is_application());
        assert!(!MonitorKind::Power.is_application());
        assert!(!MonitorKind::Temperature.is_application());
    }

    #[test]
    fn reading_display() {
        let r = MonitorReading {
            kind: MonitorKind::Temperature,
            source: "soc".into(),
            value: 74.2,
            at_secs: 15.0,
        };
        let s = r.to_string();
        assert!(s.contains("Temperature"));
        assert!(s.contains("74.2"));
    }

    /// The application-knob executor actuates width and precision
    /// commands on the addressed model and leaves everything else to
    /// the device layer.
    #[test]
    fn app_commands_actuate_width_and_precision() {
        use eml_nn::arch::{build_group_cnn, CnnConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = build_group_cnn(CnnConfig::default(), &mut rng).unwrap();
        let profile = DnnProfile::from_network("dnn1", &mut net, &[0.5, 0.6, 0.65, 0.7]).unwrap();
        let mut dnn = eml_dnn::DynamicDnn::new(net, profile).unwrap();

        let quant = KnobCommand::SetPrecision {
            app: "dnn1".into(),
            precision: Precision::Int8,
        };
        assert!(apply_app_command(&quant, "dnn1", &mut dnn).unwrap());
        assert_eq!(dnn.precision(), Precision::Int8);

        let narrow = KnobCommand::SetWidth {
            app: "dnn1".into(),
            level: WidthLevel(1),
        };
        assert!(apply_app_command(&narrow, "dnn1", &mut dnn).unwrap());
        assert_eq!(dnn.level(), WidthLevel(1));

        // Another app's command and device knobs are not for us.
        assert!(!apply_app_command(&quant, "dnn2", &mut dnn).unwrap());
        let gate = KnobCommand::Gate {
            cluster: presets::flagship().cluster_ids().next().unwrap(),
            gated: true,
        };
        assert!(!apply_app_command(&gate, "dnn1", &mut dnn).unwrap());
        assert_eq!(dnn.precision(), Precision::Int8, "state untouched");

        // Out-of-range width errors propagate.
        let bad = KnobCommand::SetWidth {
            app: "dnn1".into(),
            level: WidthLevel(9),
        };
        assert!(apply_app_command(&bad, "dnn1", &mut dnn).is_err());
    }

    #[test]
    fn allocation_translates_to_ordered_commands() {
        let soc = presets::flagship();
        let rtm = Rtm::new(RtmConfig::default());
        let app = AppSpec::Dnn(DnnAppSpec {
            name: "dnn1".into(),
            profile: DnnProfile::reference("dnn1"),
            requirements: Requirements::new().with_max_latency(TimeSpan::from_millis(11.0)),
            priority: 1,
            objective: Some(Objective::MaxAccuracyThenMinEnergy),
        });
        let alloc = rtm.allocate(&soc, &[app]).unwrap();
        let cmds = commands_for(&alloc);
        // One SetOpp, one Map, one SetWidth, in that order.
        assert_eq!(cmds.len(), 3);
        assert!(matches!(cmds[0], KnobCommand::SetOpp { .. }));
        assert!(matches!(cmds[1], KnobCommand::Map { ref app, .. } if app == "dnn1"));
        assert!(
            matches!(cmds[2], KnobCommand::SetWidth { ref app, level } if app == "dnn1" && level == WidthLevel(3))
        );
    }

    #[test]
    fn duplicate_opp_commands_are_merged() {
        // Two DNNs sharing one accelerator should produce a single SetOpp
        // for that cluster.
        let soc = presets::flagship();
        let rtm = Rtm::new(RtmConfig::default());
        let mk = |name: &str, prio: u8| {
            AppSpec::Dnn(DnnAppSpec {
                name: name.into(),
                profile: DnnProfile::reference(name),
                requirements: Requirements::new().with_max_latency(TimeSpan::from_millis(50.0)),
                priority: prio,
                objective: None,
            })
        };
        let alloc = rtm.allocate(&soc, &[mk("a", 1), mk("b", 2)]).unwrap();
        let cmds = commands_for(&alloc);
        let opp_cmds = cmds
            .iter()
            .filter(|c| matches!(c, KnobCommand::SetOpp { .. }))
            .count();
        let clusters: std::collections::HashSet<_> = alloc
            .dnns
            .iter()
            .map(|d| (d.point.op.cluster, d.point.op.opp_index))
            .collect();
        assert_eq!(opp_cmds, clusters.len());
    }
}
