//! The operating-point space: every selectable combination of device knobs
//! (task mapping, core count, DVFS level) and application knobs (dynamic-DNN
//! width level), with predicted metrics.
//!
//! This is the "E, P, t, accuracy space" of the paper's §IV/§V: task
//! mapping, DVFS and the dynamic DNN are "three adjustable knobs which can
//! be adjusted to meet dynamic E, P, t and accuracy budgets/targets at
//! runtime".

use std::collections::HashMap;
use std::fmt;

use eml_dnn::profile::DnnProfile;
use eml_dnn::WidthLevel;
use eml_platform::soc::{ClusterId, Placement, Soc};
use eml_platform::units::{Energy, Power, TimeSpan};

use crate::error::{Result, RtmError};

/// One selectable configuration: where, how fast, and how wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperatingPoint {
    /// Target cluster (task-mapping knob).
    pub cluster: ClusterId,
    /// Cores used on that cluster (task-mapping knob).
    pub cores: u32,
    /// DVFS level: index into the cluster's OPP table.
    pub opp_index: usize,
    /// Dynamic-DNN width level (application knob).
    pub level: WidthLevel,
}

/// An operating point with its predicted metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvaluatedPoint {
    /// The configuration.
    pub op: OperatingPoint,
    /// Predicted inference latency.
    pub latency: TimeSpan,
    /// Predicted busy power.
    pub power: Power,
    /// Predicted energy per inference.
    pub energy: Energy,
    /// Expected top-1 accuracy in percent (platform-independent).
    pub top1_percent: f64,
}

impl EvaluatedPoint {
    /// Energy-delay product in J·s — a common combined metric.
    pub fn edp(&self) -> f64 {
        self.energy.as_joules() * self.latency.as_secs()
    }
}

impl fmt::Display for EvaluatedPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@opp{} x{} {}: {:.1} ms, {:.1} mJ, {:.0} mW, {:.1}%",
            self.op.cluster,
            self.op.opp_index,
            self.op.cores,
            self.op.level,
            self.latency.as_millis(),
            self.energy.as_millijoules(),
            self.power.as_milliwatts(),
            self.top1_percent
        )
    }
}

/// Restrictions on the enumerated space.
///
/// Defaults enumerate whole-cluster placements on every cluster at every
/// OPP and width level — the space of the paper's Fig 4(a).
#[derive(Debug, Clone, Default)]
pub struct OpSpaceConfig {
    /// Restrict to these clusters (`None` = all).
    pub clusters: Option<Vec<ClusterId>>,
    /// Also enumerate partial core counts (1..n) on CPU clusters, not just
    /// whole clusters. Needed for the Fig 2 thermal-throttling step.
    pub partial_cores: bool,
    /// Per-cluster allowed OPP indices, e.g. when another application in
    /// the same frequency domain has pinned the frequency (paper §III-B).
    pub opp_restrictions: HashMap<usize, Vec<usize>>,
    /// Per-cluster latency multiplier from co-located applications
    /// time-sharing the resource (1.0 = exclusive).
    pub sharing_penalty: HashMap<usize, f64>,
    /// Per-cluster multiplicative latency corrections learned from
    /// monitors (see [`crate::feedback::LatencyFeedback`]). Unlike the
    /// sharing penalty these may be below 1.0 (a cluster observed running
    /// faster than modelled).
    pub latency_corrections: HashMap<usize, f64>,
}

impl OpSpaceConfig {
    /// Restricts enumeration to the given clusters.
    #[must_use]
    pub fn with_clusters(mut self, clusters: Vec<ClusterId>) -> Self {
        self.clusters = Some(clusters);
        self
    }

    /// Enables partial-core placements.
    #[must_use]
    pub fn with_partial_cores(mut self) -> Self {
        self.partial_cores = true;
        self
    }

    /// Restricts a cluster to the given OPP indices.
    #[must_use]
    pub fn with_opp_restriction(mut self, cluster: ClusterId, opps: Vec<usize>) -> Self {
        self.opp_restrictions.insert(cluster.index(), opps);
        self
    }

    /// Applies a latency multiplier for sharing `cluster` with other work.
    #[must_use]
    pub fn with_sharing_penalty(mut self, cluster: ClusterId, factor: f64) -> Self {
        self.sharing_penalty
            .insert(cluster.index(), factor.max(1.0));
        self
    }

    /// Applies a monitor-learned latency correction to `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive (a corrupted
    /// correction would poison every prediction).
    #[must_use]
    pub fn with_latency_correction(mut self, cluster: ClusterId, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "latency correction must be finite and positive, got {factor}"
        );
        self.latency_corrections.insert(cluster.index(), factor);
        self
    }
}

/// The enumerable, on-demand-evaluable operating-point space for one
/// application (profile) on one SoC.
pub struct OpSpace<'a> {
    soc: &'a Soc,
    profile: &'a DnnProfile,
    cfg: OpSpaceConfig,
    points: Vec<OperatingPoint>,
}

impl fmt::Debug for OpSpace<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "OpSpace({} on {}, {} points)",
            self.profile.name(),
            self.soc.name(),
            self.points.len()
        )
    }
}

impl<'a> OpSpace<'a> {
    /// Enumerates the space.
    ///
    /// # Errors
    ///
    /// Returns [`RtmError::EmptySpace`] if the restrictions eliminate every
    /// point, and propagates platform errors for invalid cluster ids.
    pub fn new(soc: &'a Soc, profile: &'a DnnProfile, cfg: OpSpaceConfig) -> Result<Self> {
        let cluster_ids: Vec<ClusterId> = match &cfg.clusters {
            Some(ids) => ids.clone(),
            None => soc.cluster_ids().collect(),
        };
        let mut points = Vec::new();
        for &cid in &cluster_ids {
            let spec = soc.cluster(cid)?;
            let core_options: Vec<u32> = if cfg.partial_cores && spec.kind().is_cpu() {
                (1..=spec.cores()).collect()
            } else {
                vec![spec.cores()]
            };
            let opp_indices: Vec<usize> = match cfg.opp_restrictions.get(&cid.index()) {
                Some(allowed) => allowed
                    .iter()
                    .copied()
                    .filter(|&i| i < spec.opps().len())
                    .collect(),
                None => (0..spec.opps().len()).collect(),
            };
            for &cores in &core_options {
                for &opp in &opp_indices {
                    for (level, _) in profile.levels() {
                        points.push(OperatingPoint {
                            cluster: cid,
                            cores,
                            opp_index: opp,
                            level,
                        });
                    }
                }
            }
        }
        if points.is_empty() {
            return Err(RtmError::EmptySpace {
                reason: format!(
                    "no operating points for `{}` on `{}` under the given restrictions",
                    profile.name(),
                    soc.name()
                ),
            });
        }
        Ok(Self {
            soc,
            profile,
            cfg,
            points,
        })
    }

    /// The SoC this space is defined over.
    pub fn soc(&self) -> &Soc {
        self.soc
    }

    /// The application profile this space is defined for.
    pub fn profile(&self) -> &DnnProfile {
        self.profile
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the space is empty (never true for a constructed space).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over the raw operating points.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = OperatingPoint> + '_ {
        self.points.iter().copied()
    }

    /// Whether `op` is one of the enumerated points of this space.
    ///
    /// [`OpSpace::evaluate`] happily predicts arbitrary configurations;
    /// search policies use this to stay within the configured space (core
    /// counts, OPP restrictions).
    pub fn contains(&self, op: OperatingPoint) -> bool {
        self.points.contains(&op)
    }

    /// Predicts the metrics of one operating point.
    ///
    /// # Errors
    ///
    /// Propagates platform/profile errors (invalid cluster, OPP, cores or
    /// level).
    pub fn evaluate(&self, op: OperatingPoint) -> Result<EvaluatedPoint> {
        let workload = self.profile.workload(op.level)?;
        let prediction = self.soc.predict_at_opp(
            Placement::new(op.cluster, op.cores),
            op.opp_index,
            workload,
        )?;
        let share = self
            .cfg
            .sharing_penalty
            .get(&op.cluster.index())
            .copied()
            .unwrap_or(1.0);
        let correction = self
            .cfg
            .latency_corrections
            .get(&op.cluster.index())
            .copied()
            .unwrap_or(1.0);
        let latency = prediction.latency * (share * correction);
        // Under time-sharing the app still consumes its own energy; the
        // cluster's busy power is attributed to the co-runners in
        // proportion, so per-inference energy is unchanged to first order.
        Ok(EvaluatedPoint {
            op,
            latency,
            power: prediction.power,
            energy: prediction.energy,
            top1_percent: self.profile.top1(op.level)?,
        })
    }

    /// Evaluates every point in the space (the full Fig 4(a) sweep).
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation error (none occur for points the
    /// space itself enumerated).
    pub fn evaluate_all(&self) -> Result<Vec<EvaluatedPoint>> {
        self.points.iter().map(|&op| self.evaluate(op)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eml_platform::presets;

    fn soc() -> Soc {
        presets::odroid_xu3()
    }

    #[test]
    fn full_space_size_matches_fig4a_dimensions() {
        let soc = soc();
        let profile = DnnProfile::reference("dnn");
        let cpu_ids = vec![
            soc.find_cluster("a15").unwrap(),
            soc.find_cluster("a7").unwrap(),
        ];
        let space = OpSpace::new(
            &soc,
            &profile,
            OpSpaceConfig::default().with_clusters(cpu_ids),
        )
        .unwrap();
        // (17 A15 + 12 A7 OPPs) × 4 width levels = 116 points.
        assert_eq!(space.len(), (17 + 12) * 4);
    }

    #[test]
    fn evaluate_reproduces_platform_prediction() {
        let soc = soc();
        let profile = DnnProfile::reference("dnn");
        let space = OpSpace::new(&soc, &profile, OpSpaceConfig::default()).unwrap();
        let a7 = soc.find_cluster("a7").unwrap();
        // A7, highest OPP (1.3 GHz), full width: Table I row 10.
        let op = OperatingPoint {
            cluster: a7,
            cores: 4,
            opp_index: 11,
            level: WidthLevel(3),
        };
        let pt = space.evaluate(op).unwrap();
        assert!((pt.latency.as_millis() - 280.0).abs() / 280.0 < 0.02);
        assert!((pt.power.as_milliwatts() - 329.0).abs() < 1.0);
        assert_eq!(pt.top1_percent, 71.2);
    }

    #[test]
    fn width_level_scales_latency_and_energy() {
        let soc = soc();
        let profile = DnnProfile::reference("dnn");
        let space = OpSpace::new(&soc, &profile, OpSpaceConfig::default()).unwrap();
        let a15 = soc.find_cluster("a15").unwrap();
        let mk = |level| OperatingPoint {
            cluster: a15,
            cores: 4,
            opp_index: 8,
            level,
        };
        let full = space.evaluate(mk(WidthLevel(3))).unwrap();
        let quarter = space.evaluate(mk(WidthLevel(0))).unwrap();
        assert!((quarter.latency.as_secs() / full.latency.as_secs() - 0.25).abs() < 0.01);
        assert!(quarter.energy < full.energy);
        assert!(quarter.top1_percent < full.top1_percent);
    }

    #[test]
    fn opp_restriction_limits_space() {
        let soc = soc();
        let profile = DnnProfile::reference("dnn");
        let a15 = soc.find_cluster("a15").unwrap();
        let space = OpSpace::new(
            &soc,
            &profile,
            OpSpaceConfig::default()
                .with_clusters(vec![a15])
                .with_opp_restriction(a15, vec![3, 8]),
        )
        .unwrap();
        assert_eq!(space.len(), 2 * 4);
        assert!(space
            .iter()
            .all(|op| op.opp_index == 3 || op.opp_index == 8));
    }

    #[test]
    fn out_of_range_opp_restrictions_are_dropped() {
        let soc = soc();
        let profile = DnnProfile::reference("dnn");
        let a15 = soc.find_cluster("a15").unwrap();
        let err = OpSpace::new(
            &soc,
            &profile,
            OpSpaceConfig::default()
                .with_clusters(vec![a15])
                .with_opp_restriction(a15, vec![99]),
        );
        assert!(matches!(err, Err(RtmError::EmptySpace { .. })));
    }

    #[test]
    fn partial_cores_enumerates_cpu_core_counts() {
        let soc = soc();
        let profile = DnnProfile::reference("dnn");
        let a7 = soc.find_cluster("a7").unwrap();
        let space = OpSpace::new(
            &soc,
            &profile,
            OpSpaceConfig::default()
                .with_clusters(vec![a7])
                .with_partial_cores(),
        )
        .unwrap();
        assert_eq!(space.len(), 4 * 12 * 4); // cores × OPPs × levels
                                             // Fewer cores: slower, cheaper.
        let eval = |cores| {
            space
                .evaluate(OperatingPoint {
                    cluster: a7,
                    cores,
                    opp_index: 11,
                    level: WidthLevel(3),
                })
                .unwrap()
        };
        assert!(eval(1).latency > eval(4).latency);
        assert!(eval(1).power < eval(4).power);
    }

    #[test]
    fn sharing_penalty_multiplies_latency_only() {
        let soc = soc();
        let profile = DnnProfile::reference("dnn");
        let gpu = soc.find_cluster("gpu").unwrap();
        let exclusive = OpSpace::new(
            &soc,
            &profile,
            OpSpaceConfig::default().with_clusters(vec![gpu]),
        )
        .unwrap();
        let shared = OpSpace::new(
            &soc,
            &profile,
            OpSpaceConfig::default()
                .with_clusters(vec![gpu])
                .with_sharing_penalty(gpu, 2.0),
        )
        .unwrap();
        let op = OperatingPoint {
            cluster: gpu,
            cores: 1,
            opp_index: 6,
            level: WidthLevel(3),
        };
        let a = exclusive.evaluate(op).unwrap();
        let b = shared.evaluate(op).unwrap();
        assert!((b.latency.as_secs() / a.latency.as_secs() - 2.0).abs() < 1e-9);
        assert_eq!(a.energy, b.energy);
    }

    #[test]
    fn evaluate_all_covers_every_point() {
        let soc = soc();
        let profile = DnnProfile::reference("dnn");
        let space = OpSpace::new(&soc, &profile, OpSpaceConfig::default()).unwrap();
        let all = space.evaluate_all().unwrap();
        assert_eq!(all.len(), space.len());
        assert!(all.iter().all(|p| p.latency.as_secs() > 0.0));
    }

    #[test]
    fn edp_is_product() {
        let soc = soc();
        let profile = DnnProfile::reference("dnn");
        let space = OpSpace::new(&soc, &profile, OpSpaceConfig::default()).unwrap();
        let pt = space.evaluate(space.iter().next().unwrap()).unwrap();
        assert!((pt.edp() - pt.energy.as_joules() * pt.latency.as_secs()).abs() < 1e-15);
    }
}
