//! Optimisation objectives for choosing among feasible operating points.
//!
//! The paper's worked example (§IV) selects "the highest accuracy and
//! lowest energy" configuration within the budgets — a lexicographic
//! objective captured by [`Objective::MaxAccuracyThenMinEnergy`], the RTM
//! default. Alternatives are provided for ablation.

use std::cmp::Ordering;

use crate::opspace::EvaluatedPoint;

/// How to rank feasible operating points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Objective {
    /// Lexicographic: highest accuracy, then lowest energy, then lowest
    /// latency (the paper's §IV selection rule).
    #[default]
    MaxAccuracyThenMinEnergy,
    /// Lowest energy, ties broken by higher accuracy then lower latency.
    MinEnergy,
    /// Lowest latency, ties broken by higher accuracy then lower energy.
    MinLatency,
    /// Lowest energy-delay product, ties broken by higher accuracy.
    MinEdp,
}

impl Objective {
    /// Returns `Ordering::Less` when `a` is *better* than `b` under this
    /// objective (so the best point is the minimum).
    pub fn compare(self, a: &EvaluatedPoint, b: &EvaluatedPoint) -> Ordering {
        let by = |x: f64, y: f64| x.partial_cmp(&y).unwrap_or(Ordering::Equal);
        match self {
            Self::MaxAccuracyThenMinEnergy => by(b.top1_percent, a.top1_percent)
                .then(by(a.energy.as_joules(), b.energy.as_joules()))
                .then(by(a.latency.as_secs(), b.latency.as_secs())),
            Self::MinEnergy => by(a.energy.as_joules(), b.energy.as_joules())
                .then(by(b.top1_percent, a.top1_percent))
                .then(by(a.latency.as_secs(), b.latency.as_secs())),
            Self::MinLatency => by(a.latency.as_secs(), b.latency.as_secs())
                .then(by(b.top1_percent, a.top1_percent))
                .then(by(a.energy.as_joules(), b.energy.as_joules())),
            Self::MinEdp => by(a.edp(), b.edp()).then(by(b.top1_percent, a.top1_percent)),
        }
    }

    /// Selects the best point from an iterator, or `None` if it is empty.
    pub fn best<'a>(
        self,
        points: impl IntoIterator<Item = &'a EvaluatedPoint>,
    ) -> Option<&'a EvaluatedPoint> {
        points.into_iter().min_by(|a, b| self.compare(a, b))
    }

    /// A scalar "badness" score for hill-climbing search: lower is better.
    ///
    /// The lexicographic objectives are approximated with weighted sums
    /// whose weights separate the tiers by orders of magnitude.
    pub fn score(self, pt: &EvaluatedPoint) -> f64 {
        match self {
            Self::MaxAccuracyThenMinEnergy => {
                -pt.top1_percent * 1.0e6
                    + pt.energy.as_millijoules() * 1.0e2
                    + pt.latency.as_millis() * 1.0e-3
            }
            Self::MinEnergy => {
                pt.energy.as_millijoules() * 1.0e6 - pt.top1_percent * 1.0e2
                    + pt.latency.as_millis() * 1.0e-3
            }
            Self::MinLatency => {
                pt.latency.as_millis() * 1.0e6 - pt.top1_percent * 1.0e2
                    + pt.energy.as_millijoules() * 1.0e-3
            }
            Self::MinEdp => pt.edp() * 1.0e6 - pt.top1_percent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opspace::OperatingPoint;
    use eml_dnn::WidthLevel;
    use eml_platform::units::{Energy, Power, TimeSpan};
    use eml_platform::ClusterId;

    fn pt(lat_ms: f64, e_mj: f64, top1: f64) -> EvaluatedPoint {
        EvaluatedPoint {
            op: OperatingPoint {
                cluster: ClusterId::from_index(0),
                cores: 1,
                opp_index: 0,
                level: WidthLevel(0),
            },
            latency: TimeSpan::from_millis(lat_ms),
            energy: Energy::from_millijoules(e_mj),
            power: Power::from_milliwatts(100.0),
            top1_percent: top1,
        }
    }

    #[test]
    fn paper_objective_prefers_accuracy_first() {
        let obj = Objective::MaxAccuracyThenMinEnergy;
        let high_acc = pt(300.0, 90.0, 71.2);
        let low_energy = pt(100.0, 10.0, 56.0);
        assert_eq!(obj.compare(&high_acc, &low_energy), Ordering::Less);
        // Same accuracy: lower energy wins.
        let a = pt(300.0, 76.0, 71.2);
        let b = pt(200.0, 80.0, 71.2);
        assert_eq!(obj.compare(&a, &b), Ordering::Less);
        // Same accuracy and energy: lower latency wins.
        let a = pt(200.0, 80.0, 71.2);
        let b = pt(300.0, 80.0, 71.2);
        assert_eq!(obj.compare(&a, &b), Ordering::Less);
    }

    #[test]
    fn min_energy_objective() {
        let obj = Objective::MinEnergy;
        assert_eq!(
            obj.compare(&pt(500.0, 10.0, 50.0), &pt(10.0, 20.0, 71.0)),
            Ordering::Less
        );
    }

    #[test]
    fn min_latency_objective() {
        let obj = Objective::MinLatency;
        assert_eq!(
            obj.compare(&pt(10.0, 99.0, 50.0), &pt(20.0, 1.0, 71.0)),
            Ordering::Less
        );
    }

    #[test]
    fn min_edp_objective() {
        let obj = Objective::MinEdp;
        // EDP: 0.1 J·0.1 s = 0.01 < 0.2·0.2.
        assert_eq!(
            obj.compare(&pt(100.0, 100.0, 50.0), &pt(200.0, 200.0, 71.0)),
            Ordering::Less
        );
    }

    #[test]
    fn best_selects_minimum() {
        let pts = vec![
            pt(100.0, 50.0, 62.7),
            pt(400.0, 76.0, 71.2),
            pt(50.0, 30.0, 56.0),
        ];
        let best = Objective::MaxAccuracyThenMinEnergy.best(&pts).unwrap();
        assert_eq!(best.top1_percent, 71.2);
        let best = Objective::MinLatency.best(&pts).unwrap();
        assert_eq!(best.top1_percent, 56.0);
        assert!(Objective::MinEnergy.best(std::iter::empty()).is_none());
    }

    #[test]
    fn score_agrees_with_compare_on_clear_cases() {
        for obj in [
            Objective::MaxAccuracyThenMinEnergy,
            Objective::MinEnergy,
            Objective::MinLatency,
            Objective::MinEdp,
        ] {
            let a = pt(100.0, 20.0, 71.2);
            let b = pt(900.0, 300.0, 56.0);
            assert_eq!(
                obj.compare(&a, &b) == Ordering::Less,
                obj.score(&a) < obj.score(&b),
                "{obj:?}"
            );
        }
    }
}
