//! Debug-build lock-order enforcement: [`RankedMutex`].
//!
//! The workspace's concurrency contract is a *total order* on its
//! mutexes: every subsystem's locks carry a numeric rank (see
//! [`rank`]), and a thread may only acquire a lock whose rank is
//! **strictly greater** than every rank it already holds. Acquiring in
//! increasing-rank order makes a cyclic wait — the necessary condition
//! for deadlock — impossible by construction.
//!
//! In debug builds every [`RankedMutex::lock`] checks the acquiring
//! thread's held-rank stack (a thread local) *before* blocking on the
//! OS mutex, and panics with both lock names on an out-of-order
//! acquisition — so every ordinary `cargo test` run doubles as a
//! lock-order checker, and a violation fails loudly at the acquisition
//! site instead of deadlocking some later run. In release builds the
//! bookkeeping compiles out entirely (`#[cfg(debug_assertions)]`);
//! what remains is a plain [`std::sync::Mutex`] behind a newtype.
//!
//! Poisoning is recovered (`PoisonError::into_inner`) — every critical
//! section in this workspace is short and state-restoring, and the
//! supervising layers (executor watchdog, connection reaper) own
//! crash recovery. Lock *data* after a panic is handled at those
//! layers; the lock itself stays usable.
//!
//! The static counterpart of this check is the `lock-order` rule in
//! `eml-lint` (`cargo run -p eml-lint -- --check`); the invariant
//! catalogue lives in `docs/INVARIANTS.md`.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// The workspace lock-rank table: one constant per subsystem mutex,
/// globally ordered. A thread holding rank *r* may only acquire ranks
/// strictly greater than *r*.
///
/// The table is deliberately centralised (rather than per-crate) so
/// the *global* order — including cross-crate chains such as an
/// `eml-net` connection thread holding nothing while it calls into an
/// `eml-serve` submit that locks queue state — is documented in one
/// place. Gaps between values leave room for new locks without
/// renumbering (renumbering is fine, though: ranks are a build-time
/// contract, not a wire format).
pub mod rank {
    /// `eml-net` per-client admission registry.
    pub const NET_ADMISSION: u32 = 100;
    /// `eml-net` connection-thread handle list.
    pub const NET_CONNS: u32 = 110;
    /// `eml-serve` executor app map (registration/deregistration and
    /// name→runtime lookup). Below every per-app lock so lifecycle
    /// paths may resolve an app and then touch its queue/thread state.
    pub const EXEC_APPS: u32 = 190;
    /// `eml-serve` watchdog stop flag.
    pub const EXEC_WATCHDOG: u32 = 200;
    /// `eml-serve` shared worker-pool scheduler state (the app roster
    /// the EDF scan walks, plus the pool stop flag). Below every
    /// per-app lock so a driver may hold the pool lock across its scan
    /// while peeking at each app's queue state.
    pub const EXEC_POOL: u32 = 215;
    /// `eml-serve` per-driver serving-thread handle.
    pub const EXEC_THREAD: u32 = 220;
    /// `eml-serve` per-driver current-app slot (which tenant a pool
    /// driver is serving right now; the watchdog confiscates through
    /// it).
    pub const EXEC_DRIVER: u32 = 225;
    /// `eml-serve` per-app queue state — the serving hot path.
    pub const EXEC_QUEUE: u32 = 230;
    /// `eml-serve` per-app model (held across a forward pass).
    pub const EXEC_MODEL: u32 = 240;
    /// `eml-serve` per-app statistics. Ranked above the queue: the
    /// serve loop's completion path settles stats *inside* the queue
    /// critical section (the one sanctioned nesting).
    pub const EXEC_STATS: u32 = 250;
    /// `eml-serve` per-app supervision (restart backoff) state.
    pub const EXEC_SUPERVISION: u32 = 260;
}

#[cfg(debug_assertions)]
mod held {
    use std::cell::RefCell;

    thread_local! {
        /// Ranks (and names, for the panic message) of every
        /// [`super::RankedMutex`] this thread currently holds, in
        /// acquisition order.
        static HELD: RefCell<Vec<(u32, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    /// Checks the order and records the acquisition. Called *before*
    /// blocking on the OS mutex, so a violation panics instead of
    /// deadlocking.
    pub fn acquire(rank: u32, name: &'static str) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(&(top, top_name)) = h.last() {
                assert!(
                    rank > top,
                    "lock-order violation: acquiring `{name}` (rank {rank}) while holding \
                     `{top_name}` (rank {top}); ranks must strictly increase — \
                     see eml_core::sync::rank"
                );
            }
            h.push((rank, name));
        });
    }

    /// Releases the most recent acquisition of `rank`. Guards may drop
    /// out of order (that is legal and deadlock-free), so this removes
    /// the last matching entry rather than asserting a stack pop.
    pub fn release(rank: u32) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(at) = h.iter().rposition(|&(r, _)| r == rank) {
                h.remove(at);
            }
        });
    }

    /// The number of ranked locks the current thread holds (test hook).
    #[cfg(test)]
    pub fn held_count() -> usize {
        HELD.with(|h| h.borrow().len())
    }
}

/// A [`std::sync::Mutex`] that participates in the workspace's global
/// lock-rank order. See the module docs for the contract; see
/// [`rank`] for the table.
#[derive(Debug)]
pub struct RankedMutex<T> {
    rank: u32,
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> RankedMutex<T> {
    /// Wraps `value` in a mutex with the given rank and diagnostic
    /// name (conventionally a [`rank`] constant and its subsystem).
    pub const fn new(rank: u32, name: &'static str, value: T) -> Self {
        Self {
            rank,
            name,
            inner: Mutex::new(value),
        }
    }

    /// This lock's rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// This lock's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the lock.
    ///
    /// In debug builds, panics if the calling thread already holds a
    /// ranked lock of equal or greater rank (an ordering violation
    /// that could deadlock under a different interleaving). Poisoning
    /// is recovered — see the module docs.
    pub fn lock(&self) -> RankedGuard<'_, T> {
        #[cfg(debug_assertions)]
        held::acquire(self.rank, self.name);
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        RankedGuard {
            rank: self.rank,
            guard: Some(guard),
        }
    }

    /// Atomically releases `guard` and blocks on `cv`, reacquiring the
    /// lock on wake — [`Condvar::wait`] lifted to ranked guards. The
    /// rank stays on the thread's held stack across the wait: the
    /// caller still logically owns this lock's place in the order and
    /// wakes holding it again.
    pub fn wait<'a>(&self, cv: &Condvar, mut guard: RankedGuard<'a, T>) -> RankedGuard<'a, T> {
        if let Some(inner) = guard.guard.take() {
            guard.guard = Some(cv.wait(inner).unwrap_or_else(PoisonError::into_inner));
        }
        guard
    }

    /// [`RankedMutex::wait`] with a timeout; the boolean is `true` if
    /// the wait timed out.
    pub fn wait_timeout<'a>(
        &self,
        cv: &Condvar,
        mut guard: RankedGuard<'a, T>,
        timeout: Duration,
    ) -> (RankedGuard<'a, T>, bool) {
        let mut timed_out = false;
        if let Some(inner) = guard.guard.take() {
            let (inner, result) = cv
                .wait_timeout(inner, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = result.timed_out();
            guard.guard = Some(inner);
        }
        (guard, timed_out)
    }
}

/// The guard of a [`RankedMutex`]; releases the lock — and, in debug
/// builds, the thread's held-rank entry — on drop.
#[derive(Debug)]
pub struct RankedGuard<'a, T> {
    rank: u32,
    /// `None` only transiently inside `wait`/`wait_timeout`.
    guard: Option<MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for RankedGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match &self.guard {
            Some(g) => g,
            // Unreachable: `guard` is `None` only while `wait` holds
            // the `RankedGuard` by value, when no deref can occur.
            None => unreachable!("ranked guard observed mid-wait"),
        }
    }
}

impl<T> std::ops::DerefMut for RankedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.guard {
            Some(g) => g,
            None => unreachable!("ranked guard observed mid-wait"),
        }
    }
}

impl<T> Drop for RankedGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        held::release(self.rank);
        #[cfg(not(debug_assertions))]
        let _ = self.rank;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn in_order_acquisition_nests_and_releases() {
        let queue = RankedMutex::new(rank::EXEC_QUEUE, "queue", 1u32);
        let stats = RankedMutex::new(rank::EXEC_STATS, "stats", 2u32);
        {
            let q = queue.lock();
            let s = stats.lock();
            assert_eq!(*q + *s, 3);
        }
        // Everything released: the same order works again, and the
        // lower rank is reacquirable on its own.
        let q = queue.lock();
        assert_eq!(*q, 1);
        #[cfg(debug_assertions)]
        assert_eq!(held::held_count(), 1);
    }

    #[test]
    fn out_of_order_release_is_legal() {
        let a = RankedMutex::new(10, "a", ());
        let b = RankedMutex::new(20, "b", ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // release the *lower* rank first
        drop(gb);
        // The held stack is clean: a fresh ordered pair still works.
        let _ga = a.lock();
        let _gb = b.lock();
    }

    /// The acceptance-criteria test: an inverted acquisition (higher
    /// rank held, lower rank requested) panics in debug builds rather
    /// than setting up a potential deadlock.
    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "rank checking compiles out in release builds"
    )]
    fn inverted_acquisition_panics_in_debug() {
        let queue = RankedMutex::new(rank::EXEC_QUEUE, "queue-state", ());
        let stats = RankedMutex::new(rank::EXEC_STATS, "stats", ());
        let held = stats.lock();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _violation = queue.lock();
        }));
        let panic = result.expect_err("inverted order must panic in debug");
        let msg = panic
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string payload>".into());
        assert!(
            msg.contains("lock-order violation")
                && msg.contains("queue-state")
                && msg.contains("stats"),
            "diagnostic names both locks: {msg}"
        );
        drop(held);
        // The failed acquisition left no stale held-rank entry.
        #[cfg(debug_assertions)]
        assert_eq!(held::held_count(), 0);
        let _q = queue.lock();
        let _s = stats.lock();
    }

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "rank checking compiles out in release builds"
    )]
    fn equal_rank_nesting_panics_in_debug() {
        let a = RankedMutex::new(50, "a", ());
        let b = RankedMutex::new(50, "b", ());
        let _ga = a.lock();
        assert!(catch_unwind(AssertUnwindSafe(|| {
            let _gb = b.lock();
        }))
        .is_err());
    }

    #[test]
    fn wait_timeout_reacquires_and_reports_expiry() {
        let m = RankedMutex::new(rank::EXEC_QUEUE, "queue", 7u32);
        let cv = Condvar::new();
        let g = m.lock();
        let (g, timed_out) = m.wait_timeout(&cv, g, Duration::from_millis(5));
        assert!(timed_out);
        assert_eq!(*g, 7, "woke up holding the lock again");
        drop(g);
        // A signalled wait wakes without the timeout flag.
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                let mut g = m.lock();
                while *g != 99 {
                    let (got, timed_out) = m.wait_timeout(&cv, g, Duration::from_secs(5));
                    g = got;
                    if timed_out {
                        break;
                    }
                }
                *g
            });
            std::thread::sleep(Duration::from_millis(20));
            *m.lock() = 99;
            cv.notify_all();
            assert_eq!(waiter.join().expect("waiter"), 99);
        });
    }
}
