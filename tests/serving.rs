//! Integration suite for the multi-tenant serving executor: admission,
//! allocation actuation, batching exactness, queue overflow, executed
//! scenario replay, and the end-to-end closed loop — a deadline-missing
//! app triggers feedback-corrected re-allocation and its *measured*
//! latency then meets the requirement at the new knob point.

use std::time::Duration;

use emlrt::dnn::{DynamicDnn, Precision, WidthLevel};
use emlrt::nn::tensor::Tensor;
use emlrt::prelude::*;
use emlrt::serve::testbed;
use emlrt::serve::{ExecutedReplay, Ticket};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TIMEOUT: Duration = Duration::from_secs(30);

fn dnn_spec(name: &str, dnn: &DynamicDnn, req: Requirements, priority: u8) -> AppSpec {
    AppSpec::Dnn(DnnAppSpec {
        name: name.into(),
        profile: dnn.profile().clone(),
        requirements: req,
        priority,
        objective: None,
    })
}

fn random_samples(len: usize, count: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

/// Median measured batch-1 forward latency (seconds) at the model's
/// current width.
fn measured_latency(dnn: &mut DynamicDnn, sample: &[f32], shape: &[usize], reps: usize) -> f64 {
    let x = Tensor::from_vec(shape, sample.to_vec()).unwrap();
    // Warm up scratch arenas and packed-panel caches.
    for _ in 0..3 {
        dnn.network_mut().forward(&x, false).unwrap();
    }
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = std::time::Instant::now();
            dnn.network_mut().forward(&x, false).unwrap();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Multi-app admission: two DNNs and a rigid app allocate on the
/// flagship SoC, the allocation actuates on the executor (width knobs,
/// band caps, admission), and both DNNs serve real requests.
#[test]
fn multi_app_admission_actuates_the_allocation() {
    let exec_cfg = emlrt::serve::ExecutorConfig::default();
    let exec = Executor::new(exec_cfg);
    let cam = testbed::tiny_dnn(11);
    let det = testbed::tiny_dnn(22);
    let cam_req = Requirements::new().with_max_latency(TimeSpan::from_millis(11.0));
    let det_req = Requirements::new().with_target_fps(60.0);
    exec.register_dnn("cam", cam, &cam_req).unwrap();
    exec.register_dnn("det", det, &det_req).unwrap();
    exec.register_rigid("vr").unwrap();

    let soc = emlrt::platform::presets::flagship();
    let apps = vec![
        dnn_spec("cam", &testbed::tiny_dnn(11), cam_req, 1),
        dnn_spec("det", &testbed::tiny_dnn(22), det_req, 2),
        AppSpec::Rigid(RigidAppSpec {
            name: "vr".into(),
            preferred: vec![CoreKind::Gpu],
            utilization: 0.9,
            priority: 3,
        }),
    ];
    let mut ctl = ServeController::new(
        Rtm::new(RtmConfig::default()),
        soc,
        apps,
        ControllerConfig::default(),
    );
    let alloc = ctl.allocate_and_apply(&exec).unwrap().clone();
    assert!(alloc.rigid_app("vr").is_some(), "{alloc}");
    assert_eq!(alloc.dnns.len(), 2, "{alloc}");

    // Serve a burst on both apps; every request completes.
    let samples = random_samples(3 * 8 * 8, 8, 5);
    let tickets: Vec<Ticket> = samples
        .iter()
        .flat_map(|s| ["cam", "det"].map(|app| exec.submit(app, s).unwrap()))
        .collect();
    for t in &tickets {
        t.wait_timeout(TIMEOUT).unwrap();
    }
    exec.drain();
    for app in ["cam", "det"] {
        let s = exec.stats(app).unwrap();
        let placed = alloc.dnn(app).unwrap();
        assert_eq!(s.completed, 8, "{app}: {s:?}");
        assert_eq!(s.level, placed.point.op.level.index(), "{app}");
        assert_eq!(s.band_cap, placed.point.op.cores as usize, "{app}");
        assert!(s.admitted);
        assert_eq!(s.out_of_order, 0);
    }
}

/// Batching exactness on the f32 path: per-sample logits from batched
/// executor inference are bit-identical to a twin model's batch-1
/// forwards.
#[test]
fn f32_batching_preserves_per_sample_logits_bit_exactly() {
    let exec = Executor::new(emlrt::serve::ExecutorConfig {
        batch_cap: 8,
        queue_capacity: 64,
        ..Default::default()
    });
    exec.register_dnn("app", testbed::tiny_dnn(7), &Requirements::new())
        .unwrap();
    let mut twin = testbed::tiny_dnn(7);

    let samples = random_samples(3 * 8 * 8, 32, 9);
    exec.pause("app").unwrap();
    let tickets: Vec<Ticket> = samples
        .iter()
        .map(|s| exec.submit("app", s).unwrap())
        .collect();
    exec.resume("app").unwrap();

    for (ticket, sample) in tickets.iter().zip(&samples) {
        let done = ticket.wait_timeout(TIMEOUT).unwrap();
        assert!(done.batch_size > 1, "queued burst must coalesce");
        let x = Tensor::from_vec(&[1, 3, 8, 8], sample.clone()).unwrap();
        let solo = twin.network_mut().forward(&x, false).unwrap();
        assert_eq!(
            done.logits,
            solo.data(),
            "batched logits must be bit-identical to batch-1"
        );
    }
    exec.drain();
    let s = exec.stats("app").unwrap();
    assert_eq!(s.completed, 32);
    assert!(s.mean_batch() > 1.0, "{s:?}");
}

/// Batching on the calibrated *chained int8* path: per-sample logits
/// from batched inference match batch-1 within the quantisation
/// pipeline's analytic tolerance (with frozen scales the per-sample
/// computation is batch-independent, so the observed difference is
/// expected to be zero; the tolerance guards rounding-mode drift).
#[test]
fn chained_int8_batching_matches_batch1_within_tolerance() {
    let mut dnn = testbed::tiny_dnn(13);
    let mut twin = testbed::tiny_dnn(13);
    let mut rng = StdRng::seed_from_u64(31);
    let cal = vec![Tensor::random(&[4, 3, 8, 8], &mut rng)];
    for d in [&mut dnn, &mut twin] {
        d.set_precision(Precision::Int8);
        d.calibrate(&cal).unwrap();
        assert!(
            d.network_mut().plan_quant_chain().engaged(),
            "calibrated int8 model must chain"
        );
    }

    let exec = Executor::new(emlrt::serve::ExecutorConfig {
        batch_cap: 8,
        queue_capacity: 64,
        ..Default::default()
    });
    exec.register_dnn("q", dnn, &Requirements::new()).unwrap();

    let samples = random_samples(3 * 8 * 8, 24, 17);
    exec.pause("q").unwrap();
    let tickets: Vec<Ticket> = samples
        .iter()
        .map(|s| exec.submit("q", s).unwrap())
        .collect();
    exec.resume("q").unwrap();

    for (ticket, sample) in tickets.iter().zip(&samples) {
        let done = ticket.wait_timeout(TIMEOUT).unwrap();
        let x = Tensor::from_vec(&[1, 3, 8, 8], sample.clone()).unwrap();
        let solo = twin.network_mut().forward(&x, false).unwrap();
        for (a, b) in done.logits.iter().zip(solo.data()) {
            assert!(
                (a - b).abs() <= 1e-4 + 1e-3 * b.abs(),
                "chained int8 batched {a} vs batch-1 {b}"
            );
        }
    }
}

/// Queue overflow is a typed error, not a block and not a silent drop.
#[test]
fn queue_overflow_is_a_typed_error() {
    let exec = Executor::new(emlrt::serve::ExecutorConfig {
        queue_capacity: 2,
        batch_cap: 1,
        ..Default::default()
    });
    exec.register_dnn("app", testbed::tiny_dnn(3), &Requirements::new())
        .unwrap();
    exec.pause("app").unwrap();
    let t1 = exec.submit("app", &vec![0.1; 3 * 8 * 8]).unwrap();
    let t2 = exec.submit("app", &vec![0.2; 3 * 8 * 8]).unwrap();
    match exec.submit("app", &vec![0.3; 3 * 8 * 8]) {
        Err(ServeError::QueueFull { app, capacity }) => {
            assert_eq!(app, "app");
            assert_eq!(capacity, 2);
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    exec.resume("app").unwrap();
    t1.wait_timeout(TIMEOUT).unwrap();
    t2.wait_timeout(TIMEOUT).unwrap();
    let s = exec.stats("app").unwrap();
    assert_eq!((s.completed, s.rejected), (2, 1));
}

/// **The closed loop.** On the optimistic testbed SoC the first
/// allocation believes full width meets the deadline; real measured
/// latency misses it. Sustained misses feed the latency-feedback
/// correction and trigger `allocate_with_feedback`; the corrected
/// re-decision compresses the model (width knob actuated through the
/// executor), and the measured latency at the new knob point meets the
/// requirement.
#[test]
fn deadline_misses_trigger_reallocation_until_measured_latency_meets_requirement() {
    let mut dnn = testbed::default_dnn(1);
    let shape = [1usize, 3, 16, 16];
    let sample_len: usize = 3 * 16 * 16;
    let probe = random_samples(sample_len, 1, 2).remove(0);

    // Measure reality at the width extremes to pick a deadline the
    // full-width model misses and a narrower width clearly meets.
    let full_s = measured_latency(&mut dnn, &probe, &shape, 9);
    dnn.set_level(WidthLevel(0)).unwrap();
    let narrow_s = measured_latency(&mut dnn, &probe, &shape, 9);
    dnn.set_level(WidthLevel(3)).unwrap();
    assert!(
        full_s > narrow_s * 1.5,
        "width must separate in measured latency: full {full_s:.2e}s vs narrow {narrow_s:.2e}s"
    );
    let deadline_s = (full_s * narrow_s).sqrt();
    let req = Requirements::new().with_max_latency(TimeSpan::from_secs(deadline_s));

    let exec = Executor::new(emlrt::serve::ExecutorConfig {
        batch_cap: 1, // per-request latencies, no batching noise
        queue_capacity: 64,
        ..Default::default()
    });
    let spec = dnn_spec("cam", &dnn, req.clone(), 1);
    exec.register_dnn("cam", dnn, &req).unwrap();

    let mut ctl = ServeController::new(
        Rtm::new(RtmConfig::default()),
        testbed::quad_core_soc(),
        vec![spec],
        ControllerConfig {
            miss_window: 12,
            miss_threshold: 0.5,
            ..Default::default()
        },
    );

    // 1. The optimistic model places full width.
    let first = ctl.allocate_and_apply(&exec).unwrap();
    let first_level = first.dnn("cam").unwrap().point.op.level.index();
    assert_eq!(
        first_level, 3,
        "optimistic model must pick full width: {first}"
    );

    // 2. Drive load; epochs harvest stats and re-allocate on sustained
    // misses. Convergence: an epoch with no re-allocation whose
    // windowed p50 meets the deadline.
    let mut reallocations = 0;
    let mut converged = false;
    for _epoch in 0..8 {
        for _ in 0..16 {
            exec.submit("cam", &probe)
                .unwrap()
                .wait_timeout(TIMEOUT)
                .unwrap();
        }
        let outcome = ctl.control_epoch(&exec).unwrap();
        if outcome.reallocated {
            reallocations += 1;
            continue;
        }
        let s = exec.stats("cam").unwrap();
        if let Some(p50) = s.p50 {
            if s.window_len >= 8 && p50.as_secs() <= deadline_s {
                converged = true;
                break;
            }
        }
    }
    assert!(
        reallocations >= 1,
        "sustained misses must have triggered re-allocation"
    );
    assert!(converged, "measured latency never met the deadline");

    // 3. The new knob point is a real compression, actuated on the live
    // model, and the corrected allocator deems it feasible.
    let final_alloc = ctl.allocation().unwrap();
    let placed = final_alloc.dnn("cam").unwrap();
    assert!(
        placed.point.op.level.index() < first_level,
        "the app must have compressed: {final_alloc}"
    );
    assert!(
        placed.violations.is_empty(),
        "corrected model must deem the final point feasible: {final_alloc}"
    );
    let s = exec.stats("cam").unwrap();
    assert_eq!(s.level, placed.point.op.level.index());
    assert!(
        ctl.feedback().observed_clusters() >= 1,
        "the loop must have learned a correction"
    );
    // The learned correction is large: reality is far slower than the
    // deliberately optimistic analytic model.
    let cluster = placed.point.op.cluster;
    assert!(
        ctl.feedback().correction(cluster) > 1.5,
        "correction {:.2} should reflect the optimistic model",
        ctl.feedback().correction(cluster)
    );
}

/// Executed-mode scenario replay: the trace's per-app latencies are
/// measured through the live executor (microseconds for the tiny
/// model), not the analytic milliseconds of the profile's reference
/// workload.
#[test]
fn executed_replay_reports_measured_latencies() {
    let dnn = testbed::tiny_dnn(19);
    let req = Requirements::new().with_max_latency(TimeSpan::from_millis(11.0));
    let spec = dnn_spec("dnn1", &dnn, req.clone(), 1);

    let exec = Executor::new(emlrt::serve::ExecutorConfig::default());
    exec.register_dnn("dnn1", dnn, &req).unwrap();

    let soc = emlrt::platform::presets::flagship();
    let events = vec![emlrt::sim::simulator::ScenarioEvent {
        at_secs: 0.0,
        action: emlrt::sim::simulator::Action::Arrive(spec),
    }];
    let sim = Simulator::new(
        soc,
        events,
        SimConfig {
            duration: TimeSpan::from_secs(2.0),
            ..SimConfig::default()
        },
    )
    .unwrap();

    // Analytic run: the reference-workload profile predicts ms-scale.
    let analytic = sim.run().unwrap();
    let analytic_lat = analytic.app_at(1.0, "dnn1").unwrap().latency_ms;
    assert!(analytic_lat > 0.5, "analytic prediction is ms-scale");

    // Executed run: measured through the real kernels.
    let probe = random_samples(3 * 8 * 8, 1, 23).remove(0);
    let mut replay = ExecutedReplay::new(&exec).with_probe("dnn1", probe);
    let executed = sim.run_executed(&mut replay).unwrap();
    let measured = executed.app_at(1.0, "dnn1").unwrap();
    assert!(
        measured.latency_ms < analytic_lat / 2.0,
        "measured {} ms must be the real kernels, not the analytic {} ms",
        measured.latency_ms,
        analytic_lat
    );
    assert!(measured.met, "the tiny model meets an 11 ms budget easily");
    exec.drain();
    let s = exec.stats("dnn1").unwrap();
    assert!(s.completed >= 1, "the replay actually served requests");
}

/// Submitting to a shut-down executor is a typed `AppStopped`, never a
/// panic or a hang — and requests queued before the shutdown still
/// complete (drain-then-stop).
#[test]
fn submit_after_shutdown_returns_typed_app_stopped() {
    let mut exec = Executor::new(emlrt::serve::ExecutorConfig::default());
    exec.register_dnn("app", testbed::tiny_dnn(3), &Requirements::new())
        .unwrap();
    let queued: Vec<Ticket> = (0..4)
        .map(|_| exec.submit("app", &vec![0.1; 3 * 8 * 8]).unwrap())
        .collect();
    exec.shutdown();
    for t in &queued {
        t.wait_timeout(TIMEOUT)
            .expect("pre-shutdown requests drain before the thread exits");
    }
    for _ in 0..3 {
        match exec.submit("app", &vec![0.2; 3 * 8 * 8]) {
            Err(ServeError::AppStopped { app }) => assert_eq!(app, "app"),
            other => panic!("expected AppStopped, got {other:?}"),
        }
    }
    // Stats stay readable after shutdown and account the drain.
    let s = exec.stats("app").unwrap();
    assert_eq!(s.completed, 4, "{s:?}");
}

/// Submitting while a `drain_app` is in progress is a typed
/// `AppStopped` (the drain must terminate); once drained, submissions
/// are admitted again.
#[test]
fn submit_during_drain_returns_typed_app_stopped() {
    let req = Requirements::new().with_max_latency(TimeSpan::from_secs(10.0));
    let exec = Executor::new(emlrt::serve::ExecutorConfig::default());
    exec.register_dnn("app", testbed::tiny_dnn(5), &req)
        .unwrap();
    exec.pause("app").unwrap();
    let held: Vec<Ticket> = (0..3)
        .map(|_| exec.submit("app", &vec![0.3; 3 * 8 * 8]).unwrap())
        .collect();
    std::thread::scope(|scope| {
        let drainer = scope.spawn(|| exec.drain_app("app").unwrap());
        std::thread::sleep(Duration::from_millis(50));
        match exec.submit("app", &vec![0.4; 3 * 8 * 8]) {
            Err(ServeError::AppStopped { app }) => assert_eq!(app, "app"),
            other => panic!("expected AppStopped during drain, got {other:?}"),
        }
        exec.resume("app").unwrap();
        drainer.join().unwrap();
    });
    for t in &held {
        t.wait_timeout(TIMEOUT).unwrap();
    }
    exec.submit("app", &vec![0.5; 3 * 8 * 8])
        .unwrap()
        .wait_timeout(TIMEOUT)
        .expect("submissions admitted again after the drain");
    exec.drain();
    let s = exec.stats("app").unwrap();
    assert_eq!(s.completed, 4, "{s:?}");
}

/// A timed-out `wait_timeout` is a typed `WaitTimeout` that leaves the
/// request in flight: the late completion still reaches the same
/// ticket and still lands in the stats — no lost-ticket accounting
/// hole.
#[test]
fn timed_out_wait_leaves_the_request_in_flight_and_accounted() {
    let req = Requirements::new().with_max_latency(TimeSpan::from_secs(10.0));
    let exec = Executor::new(emlrt::serve::ExecutorConfig::default());
    exec.register_dnn("app", testbed::tiny_dnn(9), &req)
        .unwrap();
    exec.pause("app").unwrap();
    let t = exec.submit("app", &vec![0.2; 3 * 8 * 8]).unwrap();
    match t.wait_timeout(Duration::from_millis(20)) {
        Err(ServeError::WaitTimeout { app }) => assert_eq!(app, "app"),
        other => panic!("expected WaitTimeout, got {other:?}"),
    }
    // The request is still in flight: nothing was dropped or errored.
    let s = exec.stats("app").unwrap();
    assert_eq!((s.completed, s.errors, s.shed), (0, 0, 0), "{s:?}");
    assert_eq!(s.queue_depth, 1, "{s:?}");
    exec.resume("app").unwrap();
    // The same ticket receives the late completion…
    let done = t.wait_timeout(TIMEOUT).expect("late completion arrives");
    assert_eq!(done.seq, t.seq());
    exec.drain();
    // …and the stats account it exactly once.
    let s = exec.stats("app").unwrap();
    assert_eq!((s.completed, s.errors, s.shed, s.rejected), (1, 0, 0, 0));
}

/// Scenario chaos events flow through `ExecutedReplay` into live
/// executor faults: a forward panic errors one probe, a queue storm
/// floods synthetic requests — and the extended accounting holds.
#[test]
fn chaos_scenario_events_inject_faults_through_executed_replay() {
    use emlrt::sim::simulator::{Action, ChaosFault, ScenarioEvent};

    let dnn = testbed::tiny_dnn(19);
    let req = Requirements::new().with_max_latency(TimeSpan::from_millis(50.0));
    let spec = dnn_spec("dnn1", &dnn, req.clone(), 1);
    let exec = Executor::new(emlrt::serve::ExecutorConfig::default());
    exec.register_dnn("dnn1", dnn, &req).unwrap();

    let events = vec![
        ScenarioEvent {
            at_secs: 0.0,
            action: Action::Arrive(spec),
        },
        ScenarioEvent {
            at_secs: 0.5,
            action: Action::Chaos {
                app: "dnn1".into(),
                fault: ChaosFault::PanicForward,
            },
        },
        ScenarioEvent {
            at_secs: 1.0,
            action: Action::Chaos {
                app: "dnn1".into(),
                fault: ChaosFault::QueueStorm(3),
            },
        },
    ];
    let soc = emlrt::platform::presets::flagship();
    let sim = Simulator::new(
        soc,
        events,
        SimConfig {
            duration: TimeSpan::from_secs(2.0),
            ..SimConfig::default()
        },
    )
    .unwrap();
    let probe = random_samples(3 * 8 * 8, 1, 23).remove(0);
    let mut replay = ExecutedReplay::new(&exec).with_probe("dnn1", probe);
    sim.run_executed(&mut replay).unwrap();
    exec.drain();
    let s = exec.stats("dnn1").unwrap();
    assert!(
        s.errors >= 1,
        "the injected forward panic errored a probe: {s:?}"
    );
    assert_eq!(s.storm_injected, 3, "{s:?}");
    assert!(s.completed >= 3, "probes and storm riders completed: {s:?}");
    assert_eq!(s.out_of_order, 0);
}
