//! Stress and failure-injection tests: randomized multi-application churn
//! through the full simulator, asserting global invariants on every run —
//! plus a sustained-load serving soak that hammers the live executor
//! through thousands of requests and mid-stream knob switches.

use emlrt::prelude::*;
use emlrt::sim::scenario::scaled_reference_profile;
use emlrt::sim::simulator::{Action, ScenarioEvent};
use emlrt::sim::ThermalPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random but valid scenario: apps arrive, depart and mutate at
/// random times with random workload scales, budgets and priorities.
fn random_scenario(seed: u64, duration_s: f64) -> Vec<ScenarioEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();
    let mut alive: Vec<String> = Vec::new();
    let mut t = 0.0;
    let mut next_id = 0usize;
    while t < duration_s - 1.0 {
        t += rng.gen_range(0.5..3.0);
        if t >= duration_s {
            break;
        }
        let action = match rng.gen_range(0..10) {
            // Mostly arrivals; departures and updates when possible.
            0..=5 => {
                let name = format!("app{next_id}");
                next_id += 1;
                alive.push(name.clone());
                let scale = rng.gen_range(0.2..4.0);
                let budget_ms = rng.gen_range(5.0..200.0);
                Action::Arrive(AppSpec::Dnn(DnnAppSpec {
                    name: name.clone(),
                    profile: scaled_reference_profile(&name, scale),
                    requirements: Requirements::new()
                        .with_max_latency(TimeSpan::from_millis(budget_ms)),
                    priority: rng.gen_range(0..5),
                    objective: None,
                }))
            }
            6..=7 if !alive.is_empty() => {
                let idx = rng.gen_range(0..alive.len());
                let name = alive.remove(idx);
                Action::Depart(name)
            }
            _ if !alive.is_empty() => {
                let name = alive[rng.gen_range(0..alive.len())].clone();
                let scale = rng.gen_range(0.2..4.0);
                Action::Update(AppSpec::Dnn(DnnAppSpec {
                    name: name.clone(),
                    profile: scaled_reference_profile(&name, scale),
                    requirements: Requirements::new()
                        .with_target_fps(rng.gen_range(5.0..120.0))
                        .with_min_top1(rng.gen_range(50.0..70.0)),
                    priority: rng.gen_range(0..5),
                    objective: Some(Objective::MinEnergy),
                }))
            }
            _ => continue,
        };
        events.push(ScenarioEvent { at_secs: t, action });
    }
    events
}

fn check_invariants(seed: u64, policy: ThermalPolicy) {
    let duration = 20.0;
    let events = random_scenario(seed, duration);
    let soc = emlrt::platform::presets::flagship();
    let limit = soc.thermal().limit.as_celsius();
    let sim = Simulator::new(
        soc,
        events,
        SimConfig {
            duration: TimeSpan::from_secs(duration),
            thermal_policy: policy,
            ..SimConfig::default()
        },
    )
    .expect("generated scenario is valid");
    let trace = sim
        .run()
        .expect("simulation never crashes on valid scenarios");

    // Invariant 1: every sample is physically sane.
    for s in &trace.samples {
        assert!(
            s.power.as_watts() >= 0.0 && s.power.as_watts() < 50.0,
            "seed {seed}"
        );
        assert!(
            s.temp.as_celsius() >= 20.0 && s.temp.as_celsius() < 150.0,
            "seed {seed}: temp {}",
            s.temp
        );
        for a in &s.apps {
            assert!(a.latency_ms >= 0.0, "seed {seed}");
        }
    }
    // Invariant 2: time is monotone and within duration.
    for pair in trace.samples.windows(2) {
        assert!(pair[1].at_secs > pair[0].at_secs - 1e-9, "seed {seed}");
    }
    assert!(trace.samples.last().unwrap().at_secs <= duration + 1e-6);
    // Invariant 3: throttled samples exist only after a thermal decision.
    if trace.samples.iter().any(|s| s.throttled) {
        assert!(
            trace.decisions.iter().any(|d| matches!(
                d.reason,
                emlrt::sim::DecisionReason::ThermalViolation
                    | emlrt::sim::DecisionReason::ProactiveThrottle
            )),
            "seed {seed}"
        );
    }
    // Invariant 4 (proactive only): the die never meaningfully exceeds the
    // limit.
    if policy == ThermalPolicy::Proactive {
        let peak = trace.summary().peak_temp.as_celsius();
        assert!(peak <= limit + 1.0, "seed {seed}: proactive peak {peak}");
    }
    // Invariant 5: the summary is internally consistent.
    let s = trace.summary();
    assert!((0.0..=1.0).contains(&s.feasible_fraction), "seed {seed}");
    assert!(s.total_energy.as_joules() >= 0.0, "seed {seed}");
}

#[test]
fn random_churn_reactive_policy_holds_invariants() {
    for seed in 0..12 {
        check_invariants(seed, ThermalPolicy::Reactive);
    }
}

#[test]
fn random_churn_proactive_policy_holds_invariants() {
    for seed in 100..112 {
        check_invariants(seed, ThermalPolicy::Proactive);
    }
}

#[test]
fn pathological_scenarios_fail_loud_not_weird() {
    let soc = emlrt::platform::presets::flagship();
    // Impossible per-app requirements: everything gets placed best-effort
    // or reported unplaced — never a crash.
    let impossible = AppSpec::Dnn(DnnAppSpec {
        name: "impossible".into(),
        profile: DnnProfile::reference("impossible"),
        requirements: Requirements::new()
            .with_max_latency(TimeSpan::from_millis(0.0001))
            .with_min_top1(99.9),
        priority: 9,
        objective: None,
    });
    let events = vec![ScenarioEvent {
        at_secs: 0.0,
        action: Action::Arrive(impossible),
    }];
    let sim = Simulator::new(
        soc,
        events,
        SimConfig {
            duration: TimeSpan::from_secs(2.0),
            ..SimConfig::default()
        },
    )
    .unwrap();
    let trace = sim.run().unwrap();
    let app = trace.app_at(1.0, "impossible").expect("still tracked");
    assert!(!app.met, "infeasible app is reported, not silently dropped");
}

/// Sustained-load serving soak: thousands of requests through the live
/// executor while the width and precision knobs churn mid-stream.
/// Invariants: no panic, monotone FIFO completion, bounded queue depth,
/// and perfect accounting — every submission either completes or was
/// rejected with a typed error; nothing is ever silently dropped.
#[test]
fn serving_soak_survives_knob_churn_under_sustained_load() {
    use emlrt::dnn::{Precision, WidthLevel};
    use emlrt::rtm::knobs::KnobCommand;
    use emlrt::serve::{testbed, Executor, ExecutorConfig, ServeError, Ticket};
    use std::time::Duration;

    const TOTAL: usize = 2500;
    const CAPACITY: usize = 32;
    const TIMEOUT: Duration = Duration::from_secs(60);

    let mut exec = Executor::new(ExecutorConfig {
        queue_capacity: CAPACITY,
        batch_cap: 8,
        stats_window: 128,
    });
    exec.register_dnn(
        "soak",
        testbed::tiny_dnn(42),
        &Requirements::new().with_max_latency(TimeSpan::from_millis(100.0)),
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(4242);
    let sample: Vec<f32> = (0..3 * 8 * 8)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let mut outstanding: std::collections::VecDeque<Ticket> = std::collections::VecDeque::new();
    let mut submitted = 0u64;
    let mut rejected = 0u64;
    let mut completions = 0u64;
    let mut last_seq: Option<u64> = None;

    for i in 0..TOTAL {
        // Mid-stream knob churn: width walks, precision toggles —
        // every switch invalidates packed panels / chain plans while
        // requests are in flight.
        if i % 97 == 0 {
            exec.apply_command(&KnobCommand::SetWidth {
                app: "soak".into(),
                level: WidthLevel(rng.gen_range(0..4)),
            });
        }
        if i % 131 == 0 {
            exec.apply_command(&KnobCommand::SetPrecision {
                app: "soak".into(),
                precision: if rng.gen_range(0..2) == 0 {
                    Precision::Int8
                } else {
                    Precision::F32
                },
            });
        }
        match exec.submit("soak", &sample) {
            Ok(t) => {
                submitted += 1;
                outstanding.push_back(t);
            }
            Err(ServeError::QueueFull { .. }) => {
                // Back-pressure: reap outstanding completions until the
                // rejected sample is admitted. Each reap blocks on the
                // oldest ticket, i.e. on worker progress, so a bounded
                // number of reaps must open a queue slot — if it never
                // does, the executor has wedged and the test fails
                // loud.
                rejected += 1;
                let mut admitted = false;
                for _ in 0..CAPACITY + 1 {
                    let t = outstanding.pop_front().expect("queue full implies work");
                    let done = t.wait_timeout(TIMEOUT).expect("completion");
                    assert!(last_seq.is_none_or(|s| done.seq > s), "monotone completion");
                    last_seq = Some(done.seq);
                    completions += 1;
                    match exec.submit("soak", &sample) {
                        Ok(t) => {
                            submitted += 1;
                            outstanding.push_back(t);
                            admitted = true;
                            break;
                        }
                        Err(ServeError::QueueFull { .. }) => rejected += 1,
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
                assert!(admitted, "retry under back-pressure never admitted");
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
        // Keep some concurrency but bound memory.
        while outstanding.len() > CAPACITY {
            let t = outstanding.pop_front().expect("non-empty");
            let done = t.wait_timeout(TIMEOUT).expect("completion");
            assert!(last_seq.is_none_or(|s| done.seq > s), "monotone completion");
            last_seq = Some(done.seq);
            completions += 1;
        }
    }
    for t in outstanding {
        let done = t.wait_timeout(TIMEOUT).expect("completion");
        assert!(last_seq.is_none_or(|s| done.seq > s), "monotone completion");
        last_seq = Some(done.seq);
        completions += 1;
    }
    exec.drain();

    let s = exec.stats("soak").unwrap();
    assert_eq!(completions, submitted, "every admitted request completed");
    assert_eq!(s.completed, submitted, "{s:?}");
    assert_eq!(s.rejected, rejected, "{s:?}");
    assert_eq!(s.errors, 0, "no inference failures: {s:?}");
    assert_eq!(s.out_of_order, 0, "FIFO completion: {s:?}");
    assert_eq!(s.knob_errors, 0, "every knob switch applied: {s:?}");
    assert!(s.max_queue_depth <= CAPACITY, "queue depth bounded: {s:?}");
    assert!(
        s.batches < submitted,
        "sustained load must have coalesced batches: {s:?}"
    );
    // Every iteration's request was eventually admitted (retry under
    // back-pressure), so the typed rejections are pure flow control on
    // top of a complete stream.
    assert_eq!(submitted, TOTAL as u64, "perfect accounting");
}

#[test]
fn forty_concurrent_dnns_saturate_but_do_not_break() {
    // Far more applications than clusters: priorities decide who gets the
    // accelerators; everyone else time-shares or degrades.
    let soc = emlrt::platform::presets::flagship();
    let rtm = Rtm::new(RtmConfig::default());
    let apps: Vec<AppSpec> = (0..40)
        .map(|i| {
            AppSpec::Dnn(DnnAppSpec {
                name: format!("dnn{i}"),
                profile: DnnProfile::reference(format!("dnn{i}")),
                requirements: Requirements::new().with_max_latency(TimeSpan::from_millis(500.0)),
                priority: (i % 5) as u8,
                objective: None,
            })
        })
        .collect();
    let alloc = rtm.allocate(&soc, &apps).unwrap();
    // Everyone is placed (CPUs can co-host via cores, accelerators via
    // time-sharing) or explicitly unplaced; the ledger never over-commits
    // CPU cores.
    assert_eq!(alloc.dnns.len() + alloc.unplaced.len(), 40);
    let mut cores_used = std::collections::HashMap::new();
    for d in &alloc.dnns {
        let spec = soc.cluster(d.point.op.cluster).unwrap();
        if spec.kind().is_cpu() {
            *cores_used.entry(d.point.op.cluster.index()).or_insert(0u32) += d.point.op.cores;
        }
    }
    for (idx, used) in cores_used {
        let spec = soc.cluster(ClusterId::from_index(idx)).unwrap();
        assert!(used <= spec.cores(), "cluster {idx} over-committed: {used}");
    }
}
