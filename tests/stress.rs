//! Stress and failure-injection tests: randomized multi-application churn
//! through the full simulator, asserting global invariants on every run —
//! plus a sustained-load serving soak that hammers the live executor
//! through thousands of requests and mid-stream knob switches.

use emlrt::prelude::*;
use emlrt::sim::scenario::scaled_reference_profile;
use emlrt::sim::simulator::{Action, ScenarioEvent};
use emlrt::sim::ThermalPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random but valid scenario: apps arrive, depart and mutate at
/// random times with random workload scales, budgets and priorities.
fn random_scenario(seed: u64, duration_s: f64) -> Vec<ScenarioEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();
    let mut alive: Vec<String> = Vec::new();
    let mut t = 0.0;
    let mut next_id = 0usize;
    while t < duration_s - 1.0 {
        t += rng.gen_range(0.5..3.0);
        if t >= duration_s {
            break;
        }
        let action = match rng.gen_range(0..10) {
            // Mostly arrivals; departures and updates when possible.
            0..=5 => {
                let name = format!("app{next_id}");
                next_id += 1;
                alive.push(name.clone());
                let scale = rng.gen_range(0.2..4.0);
                let budget_ms = rng.gen_range(5.0..200.0);
                Action::Arrive(AppSpec::Dnn(DnnAppSpec {
                    name: name.clone(),
                    profile: scaled_reference_profile(&name, scale),
                    requirements: Requirements::new()
                        .with_max_latency(TimeSpan::from_millis(budget_ms)),
                    priority: rng.gen_range(0..5),
                    objective: None,
                }))
            }
            6..=7 if !alive.is_empty() => {
                let idx = rng.gen_range(0..alive.len());
                let name = alive.remove(idx);
                Action::Depart(name)
            }
            _ if !alive.is_empty() => {
                let name = alive[rng.gen_range(0..alive.len())].clone();
                let scale = rng.gen_range(0.2..4.0);
                Action::Update(AppSpec::Dnn(DnnAppSpec {
                    name: name.clone(),
                    profile: scaled_reference_profile(&name, scale),
                    requirements: Requirements::new()
                        .with_target_fps(rng.gen_range(5.0..120.0))
                        .with_min_top1(rng.gen_range(50.0..70.0)),
                    priority: rng.gen_range(0..5),
                    objective: Some(Objective::MinEnergy),
                }))
            }
            _ => continue,
        };
        events.push(ScenarioEvent { at_secs: t, action });
    }
    events
}

fn check_invariants(seed: u64, policy: ThermalPolicy) {
    let duration = 20.0;
    let events = random_scenario(seed, duration);
    let soc = emlrt::platform::presets::flagship();
    let limit = soc.thermal().limit.as_celsius();
    let sim = Simulator::new(
        soc,
        events,
        SimConfig {
            duration: TimeSpan::from_secs(duration),
            thermal_policy: policy,
            ..SimConfig::default()
        },
    )
    .expect("generated scenario is valid");
    let trace = sim
        .run()
        .expect("simulation never crashes on valid scenarios");

    // Invariant 1: every sample is physically sane.
    for s in &trace.samples {
        assert!(
            s.power.as_watts() >= 0.0 && s.power.as_watts() < 50.0,
            "seed {seed}"
        );
        assert!(
            s.temp.as_celsius() >= 20.0 && s.temp.as_celsius() < 150.0,
            "seed {seed}: temp {}",
            s.temp
        );
        for a in &s.apps {
            assert!(a.latency_ms >= 0.0, "seed {seed}");
        }
    }
    // Invariant 2: time is monotone and within duration.
    for pair in trace.samples.windows(2) {
        assert!(pair[1].at_secs > pair[0].at_secs - 1e-9, "seed {seed}");
    }
    assert!(trace.samples.last().unwrap().at_secs <= duration + 1e-6);
    // Invariant 3: throttled samples exist only after a thermal decision.
    if trace.samples.iter().any(|s| s.throttled) {
        assert!(
            trace.decisions.iter().any(|d| matches!(
                d.reason,
                emlrt::sim::DecisionReason::ThermalViolation
                    | emlrt::sim::DecisionReason::ProactiveThrottle
            )),
            "seed {seed}"
        );
    }
    // Invariant 4 (proactive only): the die never meaningfully exceeds the
    // limit.
    if policy == ThermalPolicy::Proactive {
        let peak = trace.summary().peak_temp.as_celsius();
        assert!(peak <= limit + 1.0, "seed {seed}: proactive peak {peak}");
    }
    // Invariant 5: the summary is internally consistent.
    let s = trace.summary();
    assert!((0.0..=1.0).contains(&s.feasible_fraction), "seed {seed}");
    assert!(s.total_energy.as_joules() >= 0.0, "seed {seed}");
}

#[test]
fn random_churn_reactive_policy_holds_invariants() {
    for seed in 0..12 {
        check_invariants(seed, ThermalPolicy::Reactive);
    }
}

#[test]
fn random_churn_proactive_policy_holds_invariants() {
    for seed in 100..112 {
        check_invariants(seed, ThermalPolicy::Proactive);
    }
}

#[test]
fn pathological_scenarios_fail_loud_not_weird() {
    let soc = emlrt::platform::presets::flagship();
    // Impossible per-app requirements: everything gets placed best-effort
    // or reported unplaced — never a crash.
    let impossible = AppSpec::Dnn(DnnAppSpec {
        name: "impossible".into(),
        profile: DnnProfile::reference("impossible"),
        requirements: Requirements::new()
            .with_max_latency(TimeSpan::from_millis(0.0001))
            .with_min_top1(99.9),
        priority: 9,
        objective: None,
    });
    let events = vec![ScenarioEvent {
        at_secs: 0.0,
        action: Action::Arrive(impossible),
    }];
    let sim = Simulator::new(
        soc,
        events,
        SimConfig {
            duration: TimeSpan::from_secs(2.0),
            ..SimConfig::default()
        },
    )
    .unwrap();
    let trace = sim.run().unwrap();
    let app = trace.app_at(1.0, "impossible").expect("still tracked");
    assert!(!app.met, "infeasible app is reported, not silently dropped");
}

/// Sustained-load serving soak: thousands of requests through the live
/// executor while the width and precision knobs churn mid-stream.
/// Invariants: no panic, monotone FIFO completion, bounded queue depth,
/// and perfect accounting — every submission either completes or was
/// rejected with a typed error; nothing is ever silently dropped.
#[test]
fn serving_soak_survives_knob_churn_under_sustained_load() {
    use emlrt::dnn::{Precision, WidthLevel};
    use emlrt::rtm::knobs::KnobCommand;
    use emlrt::serve::{testbed, Executor, ExecutorConfig, ServeError, Ticket};
    use std::time::Duration;

    const TOTAL: usize = 2500;
    const CAPACITY: usize = 32;
    const TIMEOUT: Duration = Duration::from_secs(60);

    let exec = Executor::new(ExecutorConfig {
        queue_capacity: CAPACITY,
        batch_cap: 8,
        stats_window: 128,
        ..ExecutorConfig::default()
    });
    exec.register_dnn(
        "soak",
        testbed::tiny_dnn(42),
        &Requirements::new().with_max_latency(TimeSpan::from_millis(100.0)),
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(4242);
    let sample: Vec<f32> = (0..3 * 8 * 8)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let mut outstanding: std::collections::VecDeque<Ticket> = std::collections::VecDeque::new();
    let mut submitted = 0u64;
    let mut rejected = 0u64;
    let mut completions = 0u64;
    let mut last_seq: Option<u64> = None;

    for i in 0..TOTAL {
        // Mid-stream knob churn: width walks, precision toggles —
        // every switch invalidates packed panels / chain plans while
        // requests are in flight.
        if i % 97 == 0 {
            exec.route_command(&KnobCommand::SetWidth {
                app: "soak".into(),
                level: WidthLevel(rng.gen_range(0..4)),
            })
            .unwrap();
        }
        if i % 131 == 0 {
            exec.route_command(&KnobCommand::SetPrecision {
                app: "soak".into(),
                precision: if rng.gen_range(0..2) == 0 {
                    Precision::Int8
                } else {
                    Precision::F32
                },
            })
            .unwrap();
        }
        match exec.submit("soak", &sample) {
            Ok(t) => {
                submitted += 1;
                outstanding.push_back(t);
            }
            Err(ServeError::QueueFull { .. }) => {
                // Back-pressure: reap outstanding completions until the
                // rejected sample is admitted. Each reap blocks on the
                // oldest ticket, i.e. on worker progress, so a bounded
                // number of reaps must open a queue slot — if it never
                // does, the executor has wedged and the test fails
                // loud.
                rejected += 1;
                let mut admitted = false;
                for _ in 0..CAPACITY + 1 {
                    let t = outstanding.pop_front().expect("queue full implies work");
                    let done = t.wait_timeout(TIMEOUT).expect("completion");
                    assert!(last_seq.is_none_or(|s| done.seq > s), "monotone completion");
                    last_seq = Some(done.seq);
                    completions += 1;
                    match exec.submit("soak", &sample) {
                        Ok(t) => {
                            submitted += 1;
                            outstanding.push_back(t);
                            admitted = true;
                            break;
                        }
                        Err(ServeError::QueueFull { .. }) => rejected += 1,
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
                assert!(admitted, "retry under back-pressure never admitted");
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
        // Keep some concurrency but bound memory.
        while outstanding.len() > CAPACITY {
            let t = outstanding.pop_front().expect("non-empty");
            let done = t.wait_timeout(TIMEOUT).expect("completion");
            assert!(last_seq.is_none_or(|s| done.seq > s), "monotone completion");
            last_seq = Some(done.seq);
            completions += 1;
        }
    }
    for t in outstanding {
        let done = t.wait_timeout(TIMEOUT).expect("completion");
        assert!(last_seq.is_none_or(|s| done.seq > s), "monotone completion");
        last_seq = Some(done.seq);
        completions += 1;
    }
    exec.drain();

    let s = exec.stats("soak").unwrap();
    assert_eq!(completions, submitted, "every admitted request completed");
    assert_eq!(s.completed, submitted, "{s:?}");
    assert_eq!(s.rejected, rejected, "{s:?}");
    assert_eq!(s.errors, 0, "no inference failures: {s:?}");
    assert_eq!(s.out_of_order, 0, "FIFO completion: {s:?}");
    assert_eq!(s.knob_errors, 0, "every knob switch applied: {s:?}");
    assert!(s.max_queue_depth <= CAPACITY, "queue depth bounded: {s:?}");
    assert!(
        s.batches < submitted,
        "sustained load must have coalesced batches: {s:?}"
    );
    // Every iteration's request was eventually admitted (retry under
    // back-pressure), so the typed rejections are pure flow control on
    // top of a complete stream.
    assert_eq!(submitted, TOTAL as u64, "perfect accounting");
}

/// **The chaos soak.** A deterministic fault schedule — three forward
/// panics, a thread crash, two 300 ms latency spikes, a queue storm
/// and a knob-actuation failure — drives the executor through every
/// fault-tolerance path while a degradation ladder watches the
/// pressure: zero lost tickets, exact extended accounting
/// (`attempts + storm_injected == completed + errors + rejected +
/// shed`), a supervised restart, two ladder rungs down under pressure
/// and both restored (hysteresis) once it clears. The entire outcome
/// digest — per-request outcome + prediction, every counter — is
/// asserted bit-identical across two runs of the same seed.
#[test]
fn chaos_soak_is_fault_tolerant_and_bit_reproducible() {
    use emlrt::dnn::{Precision, WidthLevel};
    use emlrt::rtm::knobs::KnobCommand;
    use emlrt::serve::{
        testbed, AppStatsSnapshot, Executor, ExecutorConfig, FaultKind, FaultPlan, HealthConfig,
        PressureAction, PressureConfig, PressurePolicy, ServeError, Ticket,
    };
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    const APP: &str = "chaos";
    const TIMEOUT: Duration = Duration::from_secs(60);
    const SAMPLE_LEN: usize = 3 * 8 * 8;

    /// Everything observable about one run, for the bit-reproducibility
    /// check. Wall-clock quantities (latencies, percentiles) are
    /// deliberately excluded; outcomes, predictions and counters are
    /// not allowed to vary.
    #[derive(Debug, PartialEq, Eq)]
    struct RunDigest {
        /// (seq, outcome, argmax) per ticketed request, in submission
        /// order: 'c' completed, 'e' inference error, 's' shed.
        outcomes: Vec<(u64, char, usize)>,
        completed: u64,
        errors: u64,
        shed: u64,
        rejected: u64,
        storm_injected: u64,
        restarts: u64,
        stalls: u64,
        knob_faulted: u64,
        knob_rejected: u64,
        out_of_order: u64,
        degrade_steps: u64,
        restore_steps: u64,
        final_level: usize,
        final_precision_int8: bool,
        ladder: Vec<char>, // 'd' degrade / 'r' restore, in tick order
    }

    fn run_once(seed: u64) -> (RunDigest, AppStatsSnapshot, u64) {
        // The schedule: keyed to request sequence numbers, so the same
        // submission pattern replays the same hostile trajectory.
        let plan = FaultPlan::new()
            .with_fault(APP, 8, FaultKind::PanicForward)
            .with_fault(APP, 12, FaultKind::PanicForward)
            .with_fault(APP, 16, FaultKind::PanicForward)
            .with_fault(APP, 20, FaultKind::CrashThread)
            .with_fault(
                APP,
                24,
                FaultKind::LatencySpike(TimeSpan::from_millis(300.0)),
            )
            .with_fault(
                APP,
                32,
                FaultKind::LatencySpike(TimeSpan::from_millis(300.0)),
            )
            .with_fault(APP, 40, FaultKind::QueueStorm(6))
            .with_fault(APP, 50, FaultKind::KnobFailure);
        let exec = Executor::new(ExecutorConfig {
            queue_capacity: 64,
            batch_cap: 4,
            watchdog_interval: Duration::from_millis(2),
            restart_backoff: Duration::from_millis(5),
            fault_plan: Some(Arc::new(plan)),
            ..ExecutorConfig::default()
        });
        exec.register_dnn(
            APP,
            testbed::tiny_dnn(seed),
            // 80 ms: normal (µs) forwards meet it easily; anything
            // queued behind a 300 ms spike is doomed and must shed.
            &Requirements::new().with_max_latency(TimeSpan::from_millis(80.0)),
        )
        .unwrap();
        // The ladder watches the health score with the queue weight
        // zeroed (the soak parks deep queues on purpose, so depth is
        // not a signal here); misses + fresh events drive it. The
        // restore line sits below 100 − w_knob_fault so the tick right
        // after the injected knob fault still counts as calm.
        let mut policy = PressurePolicy::new(PressureConfig {
            health: HealthConfig {
                w_queue: 0.0,
                // Same reasoning pool-wide: depth is choreography, not
                // health, in this soak — and it is timing dependent.
                w_pool_queue: 0.0,
                min_outcomes: 4,
                ..HealthConfig::default()
            },
            restore_at: 85.0,
            recover_ticks: 2,
            ..PressureConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0);
        let sample: Vec<f32> = (0..SAMPLE_LEN)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();

        let mut outcomes: Vec<(u64, char, usize)> = Vec::new();
        let mut ladder: Vec<char> = Vec::new();
        let mut attempts = 0u64;

        // One choreography step: queue `n` requests while paused, serve
        // them, record every outcome. Pausing first makes the batch
        // composition a pure function of (n, batch_cap).
        let mut phase = |exec: &Executor, n: usize| {
            exec.pause(APP).unwrap();
            let tickets: Vec<Ticket> = (0..n).map(|_| exec.submit(APP, &sample).unwrap()).collect();
            attempts += n as u64;
            exec.resume(APP).unwrap();
            for t in &tickets {
                match t.wait_timeout(TIMEOUT) {
                    Ok(done) => outcomes.push((done.seq, 'c', done.pred)),
                    Err(ServeError::Inference { .. }) => outcomes.push((t.seq(), 'e', usize::MAX)),
                    Err(ServeError::DeadlineExpired { .. }) => {
                        outcomes.push((t.seq(), 's', usize::MAX));
                    }
                    Err(e) => panic!("lost ticket #{}: {e}", t.seq()),
                }
            }
            exec.drain_app(APP).unwrap();
        };
        let mut tick = |exec: &Executor, policy: &mut PressurePolicy| match policy.tick(exec, APP) {
            Some(PressureAction::Degraded { .. }) => ladder.push('d'),
            Some(PressureAction::Restored { .. }) => ladder.push('r'),
            None => {}
        };
        // Knob actuation is asynchronous; ladder ticks must observe the
        // settled operating point.
        let settle = |exec: &Executor, f: &dyn Fn(&AppStatsSnapshot) -> bool| {
            let t0 = Instant::now();
            while !f(&exec.stats(APP).unwrap()) {
                assert!(t0.elapsed() < TIMEOUT, "knob never settled");
                std::thread::sleep(Duration::from_millis(1));
            }
        };

        tick(&exec, &mut policy); // baseline: healthy, no movement
        phase(&exec, 8); // A: seqs 0–7 warm up — 8 clean completions
        tick(&exec, &mut policy); // still calm
        phase(&exec, 4); // B1: panic @8 fails the whole batch, typed
        phase(&exec, 4); // B2: panic @12
        phase(&exec, 4); // B3: panic @16
        phase(&exec, 4); // C: crash @20 — watchdog restart, 4 typed errors
        phase(&exec, 8); // D: spike @24 — {24–27} ride it and miss, {28–31} shed
        tick(&exec, &mut policy); // fresh sheds → rung 1: f32 → int8
        settle(&exec, &|s| s.precision == Precision::Int8);
        phase(&exec, 8); // D2: spike @32 at the degraded point — 4 miss, 4 shed
        tick(&exec, &mut policy); // fresh sheds → rung 2: width down
        settle(&exec, &|s| s.level == 2);
        phase(&exec, 4); // E: storm @40 — 6 synthetic riders behind {40–43}
        phase(&exec, 1); // F1: seq 50 arms the knob fault
        exec.route_command(&KnobCommand::SetWidth {
            app: APP.into(),
            level: WidthLevel(1),
        })
        .unwrap();
        phase(&exec, 1); // F2: the armed fault eats the width switch
        settle(&exec, &|s| s.knob_faulted == 1);

        // Pressure has cleared: pump health evidence, restore with
        // hysteresis — two calm ticks per rung, most recent rung first.
        phase(&exec, 4);
        tick(&exec, &mut policy); // calm #1: not yet
        phase(&exec, 4);
        tick(&exec, &mut policy); // calm #2: width restored
        settle(&exec, &|s| s.level == 3);
        phase(&exec, 4);
        tick(&exec, &mut policy);
        phase(&exec, 4);
        tick(&exec, &mut policy); // precision restored
        settle(&exec, &|s| s.precision == Precision::F32);

        let s = exec.stats(APP).unwrap();
        let p = policy.stats();
        let digest = RunDigest {
            outcomes,
            completed: s.completed,
            errors: s.errors,
            shed: s.shed,
            rejected: s.rejected,
            storm_injected: s.storm_injected,
            restarts: s.restarts,
            stalls: s.stalls,
            knob_faulted: s.knob_faulted,
            knob_rejected: s.knob_rejected,
            out_of_order: s.out_of_order,
            degrade_steps: p.degrade_steps,
            restore_steps: p.restore_steps,
            final_level: s.level,
            final_precision_int8: s.precision == Precision::Int8,
            ladder,
        };
        (digest, s, attempts)
    }

    let (digest, s, attempts) = run_once(4242);

    // Zero lost tickets and exact extended accounting.
    assert_eq!(attempts, 62);
    assert_eq!(
        attempts + s.storm_injected,
        s.completed + s.errors + s.rejected + s.shed,
        "extended accounting: {s:?}"
    );
    assert_eq!(s.completed, 44, "{s:?}");
    assert_eq!(s.errors, 16, "3 panicked batches + 1 crashed batch: {s:?}");
    assert_eq!(s.shed, 8, "both spike shadows shed: {s:?}");
    assert_eq!(s.storm_injected, 6, "{s:?}");
    assert_eq!(s.rejected, 0, "{s:?}");
    assert_eq!(s.out_of_order, 0, "{s:?}");
    // Supervision: the crash was detected, the batch failed typed, the
    // thread restarted; the spikes were *not* stalls.
    assert_eq!(s.restarts, 1, "{s:?}");
    assert_eq!(s.stalls, 0, "{s:?}");
    // The spikes' riders missed their deadline (and nothing else did).
    assert!(s.missed >= 8, "{s:?}");
    // Knob-failure fault: counted per cause, point left alone.
    assert_eq!((s.knob_faulted, s.knob_rejected), (1, 0), "{s:?}");
    // The ladder stepped down twice under pressure and fully recovered
    // once it cleared.
    assert_eq!(digest.ladder, vec!['d', 'd', 'r', 'r']);
    assert_eq!((digest.degrade_steps, digest.restore_steps), (2, 2));
    assert_eq!(digest.final_level, 3, "width restored");
    assert!(!digest.final_precision_int8, "precision restored");

    // Bit-reproducibility: the same seed replays the same digest —
    // outcome chars, argmax predictions, every counter, the ladder.
    let (digest2, _, attempts2) = run_once(4242);
    assert_eq!(attempts, attempts2);
    assert_eq!(digest, digest2, "chaos soak must be bit-reproducible");
}

#[test]
fn forty_concurrent_dnns_saturate_but_do_not_break() {
    // Far more applications than clusters: priorities decide who gets the
    // accelerators; everyone else time-shares or degrades.
    let soc = emlrt::platform::presets::flagship();
    let rtm = Rtm::new(RtmConfig::default());
    let apps: Vec<AppSpec> = (0..40)
        .map(|i| {
            AppSpec::Dnn(DnnAppSpec {
                name: format!("dnn{i}"),
                profile: DnnProfile::reference(format!("dnn{i}")),
                requirements: Requirements::new().with_max_latency(TimeSpan::from_millis(500.0)),
                priority: (i % 5) as u8,
                objective: None,
            })
        })
        .collect();
    let alloc = rtm.allocate(&soc, &apps).unwrap();
    // Everyone is placed (CPUs can co-host via cores, accelerators via
    // time-sharing) or explicitly unplaced; the ledger never over-commits
    // CPU cores.
    assert_eq!(alloc.dnns.len() + alloc.unplaced.len(), 40);
    let mut cores_used = std::collections::HashMap::new();
    for d in &alloc.dnns {
        let spec = soc.cluster(d.point.op.cluster).unwrap();
        if spec.kind().is_cpu() {
            *cores_used.entry(d.point.op.cluster.index()).or_insert(0u32) += d.point.op.cores;
        }
    }
    for (idx, used) in cores_used {
        let spec = soc.cluster(ClusterId::from_index(idx)).unwrap();
        assert!(used <= spec.cores(), "cluster {idx} over-committed: {used}");
    }
}
