//! Property suite for the serving executor: randomized app mixes
//! (widths × precisions × arrival orders) must never deadlock, never
//! drop a request silently, and every app's outputs must be
//! independent of co-tenant load — bit-identical logits whether the app
//! serves alone or beside N concurrent tenants.

use std::time::Duration;

use emlrt::dnn::{Precision, WidthLevel};
use emlrt::nn::tensor::Tensor;
use emlrt::prelude::*;
use emlrt::rtm::knobs::KnobCommand;
use emlrt::serve::testbed;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TIMEOUT: Duration = Duration::from_secs(30);
const SAMPLE_LEN: usize = 3 * 8 * 8;

#[derive(Debug, Clone)]
struct AppPlan {
    name: String,
    dnn_seed: u64,
    level: usize,
    int8: bool,
    requests: usize,
    /// Per-app deadline (the EDF budget of the shared pool's ready
    /// order). `None` = no deadline: the pool's default budget.
    deadline_ms: Option<f64>,
}

/// Builds the app's model exactly as both the solo and concurrent runs
/// must see it: seeded weights, optional calibrated int8 (frozen scales
/// make chained int8 batch-composition independent), width knob.
fn build_dnn(plan: &AppPlan) -> emlrt::dnn::DynamicDnn {
    let mut dnn = testbed::tiny_dnn(plan.dnn_seed);
    if plan.int8 {
        let mut rng = StdRng::seed_from_u64(plan.dnn_seed ^ 0xCA11);
        let cal = vec![Tensor::random(&[4, 3, 8, 8], &mut rng)];
        dnn.set_precision(Precision::Int8);
        dnn.calibrate(&cal).expect("calibration runs");
    }
    dnn
}

fn inputs_for(plan: &AppPlan) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(plan.dnn_seed ^ 0x5EED);
    (0..plan.requests)
        .map(|_| {
            (0..SAMPLE_LEN)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect()
        })
        .collect()
}

/// Runs `plans` on one executor (all apps co-tenant), with the given
/// interleaved arrival order, and returns per-app per-request logits in
/// submission order. Asserts the liveness/accounting invariants.
// The round-robin interleave below is inherently index-driven (`round`
// walks several per-app streams in lockstep).
#[allow(clippy::needless_range_loop)]
fn run_mix(plans: &[AppPlan], batch_cap: usize, arrival_rotation: usize) -> Vec<Vec<Vec<f32>>> {
    let exec = Executor::new(ExecutorConfig {
        batch_cap,
        queue_capacity: 64,
        ..Default::default()
    });
    for plan in plans {
        let mut reqs = Requirements::new();
        if let Some(ms) = plan.deadline_ms {
            reqs = reqs.with_max_latency(TimeSpan::from_millis(ms));
        }
        exec.register_dnn(&plan.name, build_dnn(plan), &reqs)
            .expect("unique names");
        // Width knob through the command surface, like an RTM would.
        exec.route_command(&KnobCommand::SetWidth {
            app: plan.name.clone(),
            level: WidthLevel(plan.level),
        })
        .expect("registered app");
        exec.pause(&plan.name).expect("registered");
    }
    let inputs: Vec<Vec<Vec<f32>>> = plans.iter().map(inputs_for).collect();

    // Interleaved arrival: round-robin over the apps, starting from a
    // seed-dependent rotation, each app submitting its own stream in
    // order. Queues are paused, so every request of the mix is queued
    // before any serving starts — the coalescing pattern is then a
    // deterministic function of (counts, batch_cap).
    let mut tickets: Vec<Vec<emlrt::serve::Ticket>> = plans
        .iter()
        .map(|p| Vec::with_capacity(p.requests))
        .collect();
    let max_requests = plans.iter().map(|p| p.requests).max().unwrap_or(0);
    let submitted_total: usize = plans.iter().map(|p| p.requests).sum();
    for round in 0..max_requests {
        for k in 0..plans.len() {
            let i = (k + arrival_rotation) % plans.len();
            if round < plans[i].requests {
                let t = exec
                    .submit(&plans[i].name, &inputs[i][round])
                    .expect("capacity 64 covers every mix");
                assert_eq!(t.seq(), round as u64, "FIFO seq per app");
                tickets[i].push(t);
            }
        }
    }
    for plan in plans {
        exec.resume(&plan.name).expect("registered");
    }

    // Liveness: every ticket resolves (bounded wait = loud deadlock).
    let logits: Vec<Vec<Vec<f32>>> = tickets
        .iter()
        .map(|app_tickets| {
            app_tickets
                .iter()
                .map(|t| t.wait_timeout(TIMEOUT).expect("no lost completions").logits)
                .collect()
        })
        .collect();
    exec.drain();

    // Accounting: nothing dropped, nothing rejected, FIFO preserved,
    // queue depth bounded by capacity.
    let mut completed_total = 0;
    for plan in plans {
        let s = exec.stats(&plan.name).expect("registered");
        assert_eq!(s.completed, plan.requests as u64, "{}: {s:?}", plan.name);
        assert_eq!(s.rejected + s.errors, 0, "{}: {s:?}", plan.name);
        assert_eq!(s.out_of_order, 0, "{}: {s:?}", plan.name);
        assert_eq!(s.level, plan.level, "width knob actuated: {}", plan.name);
        assert!(s.max_queue_depth <= 64, "{}: {s:?}", plan.name);
        completed_total += s.completed as usize;
    }
    assert_eq!(completed_total, submitted_total);

    // The pool is fixed-size and fully alive regardless of how many
    // tenants the mix registered.
    let p = exec.pool_stats();
    assert_eq!(p.drivers, exec.config().pool_workers.max(1), "{p:?}");
    assert_eq!(p.live_drivers, p.drivers, "a driver died mid-mix: {p:?}");
    assert_eq!(p.apps, plans.len());
    logits
}

/// Submits to `app`, counting the attempt, and reaps the oldest
/// outstanding ticket on back-pressure (`resolve` must tolerate every
/// typed outcome legal for the caller's scenario). Returns `false` on
/// livelock instead of asserting, so proptest callers can
/// `prop_assert!` it.
fn submit_reaping(
    exec: &Executor,
    app: &str,
    sample: &[f32],
    attempts: &mut u64,
    outstanding: &mut std::collections::VecDeque<emlrt::serve::Ticket>,
    resolve: &dyn Fn(&emlrt::serve::Ticket),
) -> bool {
    let mut spins = 0u32;
    loop {
        *attempts += 1;
        match exec.submit(app, sample) {
            Ok(t) => {
                outstanding.push_back(t);
                return true;
            }
            Err(ServeError::QueueFull { .. }) => {
                match outstanding.pop_front() {
                    Some(t) => resolve(&t),
                    None => std::thread::sleep(Duration::from_millis(1)),
                }
                spins += 1;
                if spins >= 20_000 {
                    return false;
                }
            }
            Err(e) => panic!("unexpected submit outcome for {app}: {e}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random mixes: liveness + accounting under co-tenancy, and
    /// per-app outputs bit-identical to the same app serving alone.
    #[test]
    fn random_mixes_never_drop_and_tenants_are_isolated(
        n_apps in 1usize..=3,
        batch_cap in 1usize..=4,
        rotation in 0usize..3,
        levels in proptest::collection::vec(0usize..4, 3..4),
        int8s in proptest::collection::vec(0usize..2, 3..4),
        counts in proptest::collection::vec(3usize..10, 3..4),
    ) {
        let plans: Vec<AppPlan> = (0..n_apps)
            .map(|i| AppPlan {
                name: format!("app{i}"),
                dnn_seed: 100 + i as u64,
                level: levels[i],
                int8: int8s[i] == 1,
                requests: counts[i],
                deadline_ms: None,
            })
            .collect();

        // Concurrent run: all apps co-tenant.
        let mixed = run_mix(&plans, batch_cap, rotation);

        // Solo runs: each app alone on a fresh executor, same inputs,
        // same batching config. Logits must match bit-for-bit — f32 is
        // deterministic and calibrated int8 has frozen scales, so no
        // co-tenant (or batch-split) effect may leak into outputs.
        for (i, plan) in plans.iter().enumerate() {
            let solo = run_mix(std::slice::from_ref(plan), batch_cap, 0);
            prop_assert_eq!(&mixed[i], &solo[0],
                "app {} outputs depend on co-tenant load", plan.name);
        }
    }

    /// Random EDF-weighted mixes across 8–32 tenants on the fixed
    /// two-driver pool: heterogeneous deadline budgets reorder the
    /// shared ready queue, yet every ticket resolves (no deadlock),
    /// the extended accounting stays exact, per-app FIFO holds
    /// (`out_of_order == 0` inside [`run_mix`]), and each tenant's
    /// logits are bit-identical to the same tenant serving alone —
    /// the shared pool may reorder *service*, never *outputs*.
    #[test]
    fn edf_weighted_mixes_on_a_two_driver_pool(
        n_apps in 8usize..=32,
        batch_cap in 1usize..=4,
        rotation in 0usize..8,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xED_F0);
        let plans: Vec<AppPlan> = (0..n_apps)
            .map(|i| AppPlan {
                name: format!("edf{i:02}"),
                dnn_seed: 500 + i as u64,
                level: rng.gen_range(0..4),
                int8: rng.gen_range(0..2) == 1,
                requests: rng.gen_range(1..6),
                // Generous (1–10 s): budgets spread the EDF keys but
                // nothing can shed — every submission must complete.
                deadline_ms: Some(f64::from(rng.gen_range(1_000..10_000))),
            })
            .collect();
        let mixed = run_mix(&plans, batch_cap, rotation);

        // Solo isolation on a seed-picked handful (running all 32
        // solos every case would dominate the suite's runtime without
        // adding evidence).
        for _ in 0..3 {
            let i = rng.gen_range(0..plans.len());
            let solo = run_mix(std::slice::from_ref(&plans[i]), batch_cap, 0);
            prop_assert_eq!(&mixed[i], &solo[0],
                "app {} outputs depend on co-tenant load", plans[i].name);
        }
    }

    /// Arbitrary seeded [`FaultPlan`]s — panics × crashes × latency
    /// spikes × knob failures × queue storms, landing at arbitrary
    /// sequence numbers, under concurrent knob churn — must never
    /// deadlock, never drop a ticket (every wait resolves to a typed
    /// outcome within the bound), and must keep the extended accounting
    /// invariant *exact*:
    /// `attempts + storm_injected == completed + errors + rejected + shed`.
    #[test]
    fn seeded_fault_plans_never_deadlock_or_lose_tickets(
        seed in 0u64..1_000_000,
        n_faults in 0usize..6,
        requests in 8usize..40,
        batch_cap in 1usize..=4,
        churn_every in 2usize..8,
    ) {
        use emlrt::serve::{FaultPlan, Ticket};
        use std::collections::VecDeque;

        let plan = FaultPlan::seeded(seed, &["app"], n_faults, 0..requests as u64);
        let exec = Executor::new(ExecutorConfig {
            batch_cap,
            // Small on purpose: storms + crash backoffs make QueueFull
            // reachable, so the rejected leg of the invariant is live.
            queue_capacity: 16,
            watchdog_interval: Duration::from_millis(2),
            restart_backoff: Duration::from_millis(2),
            fault_plan: Some(std::sync::Arc::new(plan)),
            ..Default::default()
        });
        exec.register_dnn(
            "app",
            testbed::tiny_dnn(seed),
            // Generous deadline: spikes rarely shed, but crash-restart
            // pile-ups legitimately can — DeadlineExpired stays a legal
            // outcome rather than a guaranteed one.
            &Requirements::new().with_max_latency(TimeSpan::from_millis(250.0)),
        ).expect("fresh executor");

        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17);
        let sample: Vec<f32> = (0..SAMPLE_LEN)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();

        // A ticket may resolve three ways under faults; anything else
        // (WaitTimeout = deadlock, AppStopped = lost queue) is a bug.
        let resolve = |t: &Ticket| match t.wait_timeout(TIMEOUT) {
            Ok(_)
            | Err(ServeError::Inference { .. })
            | Err(ServeError::DeadlineExpired { .. }) => {}
            Err(e) => panic!("ticket #{} lost: {e}", t.seq()),
        };

        let mut attempts = 0u64;
        let mut outstanding: VecDeque<Ticket> = VecDeque::new();
        for i in 0..requests {
            if i % churn_every == 0 {
                // Mid-stream knob churn races the faults.
                if rng.gen_range(0..2) == 0 {
                    exec.route_command(&KnobCommand::SetWidth {
                        app: "app".into(),
                        level: WidthLevel(rng.gen_range(0..4)),
                    })
                    .unwrap();
                } else {
                    let precision = if rng.gen_range(0..2) == 0 {
                        Precision::Int8
                    } else {
                        Precision::F32
                    };
                    exec.route_command(&KnobCommand::SetPrecision {
                        app: "app".into(),
                        precision,
                    })
                    .unwrap();
                }
            }
            let mut spins = 0u32;
            loop {
                attempts += 1;
                match exec.submit("app", &sample) {
                    Ok(t) => { outstanding.push_back(t); break; }
                    Err(ServeError::QueueFull { .. }) => {
                        // Back-pressure: reap the oldest in-flight ticket
                        // (or, if the queue is full of synthetic storm
                        // riders, give the serving thread a beat).
                        match outstanding.pop_front() {
                            Some(t) => resolve(&t),
                            None => std::thread::sleep(Duration::from_millis(1)),
                        }
                        spins += 1;
                        prop_assert!(spins < 20_000, "submit livelock at request {i}");
                    }
                    Err(e) => panic!("unexpected submit outcome: {e}"),
                }
            }
        }
        for t in &outstanding {
            resolve(t);
        }
        exec.drain();

        let s = exec.stats("app").expect("registered");
        prop_assert_eq!(s.out_of_order, 0, "FIFO broke: {:?}", s);
        prop_assert_eq!(
            attempts + s.storm_injected,
            s.completed + s.errors + s.rejected + s.shed,
            "extended accounting drifted: attempts={} {:?}", attempts, s
        );
    }

    /// Mid-stream register/deregister churn under live load: a stable
    /// "pin" tenant and a churny "flux" tenant share the executor while
    /// flux is repeatedly deregistered and re-registered. Required:
    /// no deadlock (every wait resolves within the bound); no lost
    /// ticket — a ticket that crossed a deregistration resolves to a
    /// completion, a typed shed, or the typed
    /// [`ServeError::AppDeregistered`]; submissions to the tombstone
    /// get the same typed refusal; each deregistration's final
    /// snapshot closes that lifetime's extended accounting *exactly*;
    /// and a re-registered namesake starts a fresh ledger.
    #[test]
    fn register_deregister_churn_keeps_accounting_exact(
        seed in 0u64..1_000_000,
        requests in 12usize..32,
        batch_cap in 1usize..=4,
        churn_every in 3usize..8,
    ) {
        use emlrt::serve::Ticket;
        use std::collections::VecDeque;

        let exec = Executor::new(ExecutorConfig {
            batch_cap,
            queue_capacity: 16,
            ..Default::default()
        });
        let reqs = Requirements::new().with_max_latency(TimeSpan::from_millis(250.0));
        exec.register_dnn("pin", testbed::tiny_dnn(seed), &reqs)
            .expect("fresh executor");
        exec.register_dnn("flux", testbed::tiny_dnn(seed ^ 1), &reqs)
            .expect("fresh executor");

        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF);
        let sample: Vec<f32> = (0..SAMPLE_LEN)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();

        // Completions and typed sheds are always legal; the typed
        // lifecycle error is legal only for tickets that crossed a
        // flux deregistration. WaitTimeout (deadlock), AppStopped (a
        // queue lost to shutdown semantics) or anything untyped is a
        // failure.
        let resolve = |t: &Ticket| match t.wait_timeout(TIMEOUT) {
            Ok(_)
            | Err(ServeError::DeadlineExpired { .. })
            | Err(ServeError::Inference { .. }) => {}
            Err(ServeError::AppDeregistered { .. }) if t.app() == "flux" => {}
            Err(e) => panic!("ticket {}#{} lost: {e}", t.app(), t.seq()),
        };

        let mut outstanding: VecDeque<Ticket> = VecDeque::new();
        let mut pin_attempts = 0u64;
        let mut flux_attempts = 0u64; // current flux lifetime only
        let mut flux_alive = true;
        let mut deregistrations = 0u32;

        for i in 1..=requests {
            prop_assert!(
                submit_reaping(&exec, "pin", &sample, &mut pin_attempts, &mut outstanding, &resolve),
                "pin submit livelock at request {}", i
            );
            if flux_alive {
                prop_assert!(
                    submit_reaping(&exec, "flux", &sample, &mut flux_attempts, &mut outstanding, &resolve),
                    "flux submit livelock at request {}", i
                );
            } else {
                // The tombstone refuses with the distinct typed error —
                // not AppStopped, not UnknownApp — and the refusal never
                // enters the accounting ledger.
                match exec.submit("flux", &sample) {
                    Err(ServeError::AppDeregistered { .. }) => {}
                    r => panic!("tombstone submit must be typed: {r:?}"),
                }
            }

            if i % churn_every == 0 {
                if flux_alive {
                    // Outstanding flux tickets deliberately stay
                    // un-waited across this call: their later waits are
                    // the "late wait on a deregistered app" property.
                    let snap = exec.deregister_dnn("flux").expect("flux is live");
                    prop_assert_eq!(
                        flux_attempts + snap.storm_injected,
                        snap.completed + snap.errors + snap.rejected + snap.shed,
                        "lifetime accounting drifted: attempts={} {:?}",
                        flux_attempts, snap
                    );
                    match exec.deregister_dnn("flux") {
                        Err(ServeError::AppDeregistered { .. }) => {}
                        r => panic!("double deregister must be typed: {r:?}"),
                    }
                    flux_alive = false;
                    flux_attempts = 0;
                    deregistrations += 1;
                } else {
                    exec.register_dnn("flux", testbed::tiny_dnn(seed ^ u64::from(deregistrations)), &reqs)
                        .expect("tombstone must be replaceable");
                    let s = exec.stats("flux").expect("fresh registration");
                    prop_assert_eq!(
                        s.completed + s.errors + s.rejected + s.shed + s.storm_injected,
                        0,
                        "re-registration must start a fresh ledger: {:?}", s
                    );
                    flux_alive = true;
                }
            }
        }
        prop_assert!(deregistrations >= 1, "churn schedule must fire");

        // Liveness: every remaining ticket resolves to a typed outcome.
        for t in &outstanding {
            resolve(t);
        }
        exec.drain();

        let sp = exec.stats("pin").expect("pin lives");
        prop_assert_eq!(sp.out_of_order, 0, "pin FIFO broke: {:?}", sp);
        prop_assert_eq!(
            pin_attempts + sp.storm_injected,
            sp.completed + sp.errors + sp.rejected + sp.shed,
            "pin accounting drifted: attempts={} {:?}", pin_attempts, sp
        );
        let sf = exec.stats("flux").expect("live app or observable tombstone");
        if flux_alive {
            prop_assert_eq!(
                flux_attempts + sf.storm_injected,
                sf.completed + sf.errors + sf.rejected + sf.shed,
                "flux accounting drifted: attempts={} {:?}", flux_attempts, sf
            );
        } else {
            prop_assert_eq!(sf.band_cap, 0, "departed band must be released: {:?}", sf);
            prop_assert!(!sf.admitted, "tombstone must not admit: {:?}", sf);
        }
    }
}
