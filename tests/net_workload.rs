//! Generated-workload scenario driven through the networked front end:
//! the same seeded `eml_sim::workload` schedule the in-process soaks
//! replay is here submitted over real `eml-net` sockets — a live
//! `NetServer` on loopback, a `NetClient` issuing every latency probe
//! as a wire request — while arrivals, departures, allocations and
//! chaos still actuate directly on the executor behind the server
//! (lifecycle is the operator's side-channel; inference traffic is the
//! tenants').
//!
//! The point is that the hostile-client ledger assertions survive a
//! full churning scenario: every submit the front end pushed into the
//! executor is accounted for as a completion, typed error, rejection
//! or shed — across live apps *and* retired lifetimes — and the
//! front end's reply ledger stays consistent with what it submitted.
//! The shared driver pool underneath keeps its configured size
//! throughout, independent of how many tenants the schedule registers.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use emlrt::net::{AdmissionConfig, ClientError, NetClient, NetConfig, NetServer, WireStatus};
use emlrt::prelude::*;
use emlrt::rtm::rtm::{Allocation, AppSpec};
use emlrt::serve::testbed;
use emlrt::sim::workload::{self, WorkloadConfig};
use emlrt::sim::{ChaosFault, ExecutionBackend, SimConfig, Simulator};

const POOL_WORKERS: usize = 2;
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(60);

/// Final counters of departed lifetimes, folded at each scenario
/// departure so the accounting invariant closes across churn (the
/// socket backend keeps its own ledger, like `ExecutedReplay::retired`).
#[derive(Debug, Default)]
struct Retired {
    lifetimes: u64,
    completed: u64,
    errors: u64,
    rejected: u64,
    shed: u64,
    storm_injected: u64,
}

/// A fixed, seed-free probe pattern (same derivation as the in-process
/// replay backend, so wire-driven and in-process runs probe alike).
fn deterministic_probe(len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| ((i * 37 + 11) % 101) as f32 / 101.0)
        .collect()
}

/// An [`ExecutionBackend`] that routes every latency measurement
/// through a socket client while driving app lifecycle on the executor
/// behind the server.
struct SocketBackend {
    exec: Arc<Executor>,
    client: NetClient,
    probes: HashMap<String, Vec<f32>>,
    /// Ok replies received over the wire (must equal the front end's
    /// `completions` counter — this client is the only submitter).
    ok_replies: u64,
    /// Typed non-Ok replies received over the wire (back-pressure,
    /// serving errors, refusals) — never a hang, never a panic.
    typed_replies: u64,
    retired: Retired,
    /// Worst driver-pool size observed at any lifecycle edge.
    max_drivers_seen: usize,
}

impl SocketBackend {
    fn check_pool(&mut self) {
        let p = self.exec.pool_stats();
        self.max_drivers_seen = self.max_drivers_seen.max(p.drivers);
        assert_eq!(
            p.drivers, POOL_WORKERS,
            "driver count drifted with tenant count: {p:?}"
        );
    }
}

impl ExecutionBackend for SocketBackend {
    fn on_allocation(&mut self, _at_secs: f64, allocation: &Allocation) {
        self.exec.apply_allocation(allocation);
    }

    fn measure(&mut self, app: &str, _predicted: TimeSpan) -> Option<TimeSpan> {
        let probe = self.probes.get(app)?;
        let t0 = Instant::now();
        match self.client.submit(app, probe) {
            Ok(done) => {
                assert!(!done.logits.is_empty(), "{app}: empty logits over wire");
                self.ok_replies += 1;
                Some(TimeSpan::from_secs(t0.elapsed().as_secs_f64()))
            }
            Err(ClientError::Status { status, .. }) => {
                // Every refusal must be typed serving vocabulary, not
                // protocol abuse — this client is honest.
                assert!(
                    matches!(
                        status,
                        WireStatus::QueueFull
                            | WireStatus::NotAdmitted
                            | WireStatus::UnknownApp
                            | WireStatus::AppStopped
                            | WireStatus::AppDeregistered
                            | WireStatus::DeadlineExpired
                            | WireStatus::WaitTimeout
                            | WireStatus::Inference
                    ),
                    "{app}: unexpected wire refusal {status:?}"
                );
                self.typed_replies += 1;
                None
            }
            Err(other) => panic!("{app}: socket failure mid-scenario: {other:?}"),
        }
    }

    fn on_chaos(&mut self, _at_secs: f64, app: &str, fault: &ChaosFault) {
        let kind = match fault {
            ChaosFault::PanicForward => FaultKind::PanicForward,
            ChaosFault::CrashThread => FaultKind::CrashThread,
            ChaosFault::LatencySpike(t) => FaultKind::LatencySpike(*t),
            ChaosFault::KnobFailure => FaultKind::KnobFailure,
            ChaosFault::QueueStorm(n) => FaultKind::QueueStorm(*n),
            _ => return,
        };
        let _ = self.exec.inject_fault(app, kind);
    }

    fn on_arrive(&mut self, _at_secs: f64, spec: &AppSpec) {
        match spec {
            AppSpec::Dnn(d) => {
                let dnn = testbed::tiny_dnn(workload::fnv1a64(&d.name));
                let sample_len: usize = dnn.network().input_shape().iter().product();
                if self
                    .exec
                    .register_dnn(&d.name, dnn, &d.requirements)
                    .is_ok()
                {
                    self.probes
                        .entry(d.name.clone())
                        .or_insert_with(|| deterministic_probe(sample_len));
                }
            }
            AppSpec::Rigid(r) => {
                let _ = self.exec.register_rigid(&r.name);
            }
        }
        self.check_pool();
    }

    fn on_depart(&mut self, _at_secs: f64, app: &str) {
        if let Ok(snap) = self.exec.deregister_dnn(app) {
            self.retired.lifetimes += 1;
            self.retired.completed += snap.completed;
            self.retired.errors += snap.errors;
            self.retired.rejected += snap.rejected;
            self.retired.shed += snap.shed;
            self.retired.storm_injected += snap.storm_injected;
        }
        self.check_pool();
    }
}

/// A server whose admission layer is opened wide: one honest client
/// carries an entire scenario's traffic, so the token bucket must not
/// mistake the scenario for a flood (admission behaviour has its own
/// suite in `net_hostile`).
fn scenario_server() -> NetServer {
    let exec = Executor::new(ExecutorConfig {
        pool_workers: POOL_WORKERS,
        max_apps: 256,
        ..ExecutorConfig::default()
    });
    let cfg = NetConfig {
        idle_timeout: Duration::from_secs(120),
        reply_wait: Duration::from_secs(60),
        admission: AdmissionConfig {
            bucket_capacity: 100_000.0,
            refill_per_sec: 100_000.0,
            ban_threshold: 1.0e9,
            ..AdmissionConfig::default()
        },
        ..NetConfig::default()
    };
    NetServer::bind(cfg, exec).expect("bind loopback")
}

/// The wire-driven scenario: a generated churn-and-flash-crowd
/// schedule, every probe a socket round-trip, the hostile-client
/// ledger equations asserted across live and retired lifetimes after
/// drain-and-shutdown.
#[test]
fn generated_workload_over_sockets_balances_the_ledger() {
    let wl = workload::generate(&WorkloadConfig {
        seed: 0xA11C_E5EED,
        dnn_apps: 24,
        rigid_apps: 2,
        churn_cycles: 4,
        duration_secs: 12.0,
        ..WorkloadConfig::default()
    });
    assert!(wl.churn_cycles >= 1, "churn must be scheduled");
    assert!(wl.flash_storms >= 1, "flash crowd must be scheduled");

    let mut server = scenario_server();
    let addr = server.local_addr();
    let mut client = NetClient::connect(addr, CLIENT_READ_TIMEOUT).expect("connect loopback");
    client.hello("scenario-driver").expect("hello accepted");

    let mut backend = SocketBackend {
        exec: Arc::clone(server.executor()),
        client,
        probes: HashMap::new(),
        ok_replies: 0,
        typed_replies: 0,
        retired: Retired::default(),
        max_drivers_seen: 0,
    };

    let sim = Simulator::new(
        emlrt::platform::presets::flagship(),
        wl.events.clone(),
        SimConfig {
            duration: TimeSpan::from_secs(12.0),
            sample_every: TimeSpan::from_millis(500.0),
            ..SimConfig::default()
        },
    )
    .expect("generated schedule is valid");
    sim.run_executed(&mut backend)
        .expect("wire-driven scenario completes");

    // Graceful drain-and-shutdown, then the books must balance.
    server.shutdown();
    let net = server.stats();
    let exec = server.executor();

    assert_eq!(net.conn_panics, 0, "a connection handler panicked");
    assert!(
        backend.ok_replies > 0,
        "the scenario must complete inferences over the wire"
    );
    assert_eq!(
        backend.ok_replies, net.completions,
        "this client is the only submitter: {net:?}"
    );
    assert!(
        backend.retired.lifetimes >= 1,
        "churn must have retired lifetimes over the wire run"
    );

    // The pool kept its configured size through every lifecycle edge
    // and the shutdown drain — independent of the tenant count.
    let p = exec.pool_stats();
    assert_eq!(p.drivers, POOL_WORKERS, "{p:?}");
    assert_eq!(p.live_drivers, POOL_WORKERS, "a driver died: {p:?}");
    assert_eq!(backend.max_drivers_seen, POOL_WORKERS);
    assert_eq!(p.queue_depth + p.in_flight, 0, "drained: {p:?}");

    // Extended accounting across live apps and retired lifetimes, with
    // the *front end's* submission counters on the left-hand side: the
    // wire ledger and the executor ledger must agree exactly.
    let mut live_settled = 0u64;
    let mut live_storms = 0u64;
    for name in exec.app_names() {
        if let Ok(s) = exec.stats(&name) {
            assert_eq!(s.out_of_order, 0, "{name}: FIFO broke over the wire");
            live_settled += s.completed + s.errors + s.rejected + s.shed;
            live_storms += s.storm_injected;
        }
    }
    let r = &backend.retired;
    let retired_settled = r.completed + r.errors + r.rejected + r.shed;
    assert_eq!(
        (net.exec_submitted + net.exec_rejected) + live_storms + r.storm_injected,
        live_settled + retired_settled,
        "accounting broke across the wire run: net={net:?} retired={r:?}"
    );
    // The front end's reply ledger is consistent with what it submitted.
    assert_eq!(
        net.exec_submitted,
        net.completions + net.ticket_errors,
        "{net:?}"
    );
}
