//! Property-based tests (proptest) over the core data structures and
//! invariants of the reproduction.

use emlrt::platform::calibration::{fit_inverse_affine, interp_extrapolate};
use emlrt::platform::opp::OppTable;
use emlrt::platform::presets;
use emlrt::platform::thermal::{ThermalModel, ThermalState};
use emlrt::prelude::*;
use emlrt::rtm::pareto::{dominates, pareto_front};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = EvaluatedPoint> {
    (
        1.0f64..1000.0,
        0.1f64..500.0,
        10.0f64..3000.0,
        40.0f64..80.0,
        0usize..4,
    )
        .prop_map(|(lat_ms, e_mj, p_mw, top1, level)| EvaluatedPoint {
            op: OperatingPoint {
                cluster: ClusterId::from_index(0),
                cores: 1,
                opp_index: 0,
                level: WidthLevel(level),
            },
            latency: TimeSpan::from_millis(lat_ms),
            energy: Energy::from_millijoules(e_mj),
            power: Power::from_milliwatts(p_mw),
            top1_percent: top1,
        })
}

proptest! {
    /// Power × time = energy holds for arbitrary magnitudes.
    #[test]
    fn unit_algebra_round_trips(p in 1e-6f64..1e3, t in 1e-6f64..1e3) {
        let power = Power::from_watts(p);
        let time = TimeSpan::from_secs(t);
        let energy = power * time;
        prop_assert!((energy / time - power).abs().as_watts() < 1e-9 * p.max(1.0));
        prop_assert!(((energy / power) - time).abs().as_secs() < 1e-9 * t.max(1.0));
    }

    /// The latency fit is exact on single anchors and monotone decreasing
    /// in frequency for all fitted models.
    #[test]
    fn latency_fit_monotone(anchor_mhz in 100.0f64..3000.0, anchor_ms in 1.0f64..2000.0) {
        let fit = fit_inverse_affine(&[(
            Freq::from_mhz(anchor_mhz),
            TimeSpan::from_millis(anchor_ms),
        )]).unwrap();
        let t_anchor = fit.eval(Freq::from_mhz(anchor_mhz));
        prop_assert!((t_anchor.as_millis() - anchor_ms).abs() < 1e-6);
        let mut prev = f64::INFINITY;
        for mhz in (1..=30).map(|i| i as f64 * 100.0) {
            let t = fit.eval(Freq::from_mhz(mhz)).as_secs();
            prop_assert!(t <= prev);
            prev = t;
        }
    }

    /// Linear interpolation is exact on its anchors and bounded between
    /// them within each segment.
    #[test]
    fn interpolation_respects_anchors(
        ys in proptest::collection::vec(0.1f64..100.0, 2..6),
        t in 0.0f64..1.0,
    ) {
        let points: Vec<(f64, f64)> = ys
            .iter()
            .enumerate()
            .map(|(i, &y)| (i as f64, y))
            .collect();
        for &(x, y) in &points {
            prop_assert!((interp_extrapolate(&points, x) - y).abs() < 1e-9);
        }
        // A query inside segment 0 stays within the segment's value range.
        let x = t * (points[1].0 - points[0].0) + points[0].0;
        let v = interp_extrapolate(&points, x);
        let lo = points[0].1.min(points[1].1) - 1e-9;
        let hi = points[0].1.max(points[1].1) + 1e-9;
        prop_assert!(v >= lo && v <= hi);
    }

    /// OPP tables reject unsorted input and accept sorted input.
    #[test]
    fn opp_table_ordering_invariant(mut freqs in proptest::collection::vec(100.0f64..3000.0, 2..8)) {
        freqs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        freqs.dedup_by(|a, b| (*a - *b).abs() < 1.0);
        prop_assume!(freqs.len() >= 2);
        let points: Vec<(f64, f64)> = freqs
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, 800.0 + i as f64 * 10.0))
            .collect();
        let table = OppTable::from_mhz_mv(&points).unwrap();
        prop_assert_eq!(table.len(), points.len());
        // Reversed voltage ordering must be rejected.
        let bad: Vec<(f64, f64)> = freqs
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, 1000.0 - i as f64 * 10.0))
            .collect();
        prop_assert!(OppTable::from_mhz_mv(&bad).is_err());
    }

    /// No point on a Pareto frontier dominates another frontier point, and
    /// every input point is dominated by or equal to some frontier point.
    #[test]
    fn pareto_frontier_properties(points in proptest::collection::vec(arb_point(), 1..40)) {
        let front = pareto_front(&points);
        prop_assert!(!front.is_empty());
        for a in &front {
            for b in &front {
                prop_assert!(!dominates(a, b) || a == b);
            }
        }
        for p in &points {
            let covered = front.iter().any(|f| f == p || dominates(f, p));
            prop_assert!(covered);
        }
    }

    /// Requirements: relaxing any budget never shrinks the feasible set.
    #[test]
    fn requirement_relaxation_is_monotone(
        pt in arb_point(),
        lat in 1.0f64..1000.0,
        slack in 1.0f64..100.0,
    ) {
        let tight = Requirements::new().with_max_latency(TimeSpan::from_millis(lat));
        let loose = Requirements::new().with_max_latency(TimeSpan::from_millis(lat + slack));
        if tight.satisfied_by(&pt) {
            prop_assert!(loose.satisfied_by(&pt));
        }
    }

    /// Thermal state converges toward steady state from any start and never
    /// overshoots it.
    #[test]
    fn thermal_never_overshoots(power_w in 0.0f64..20.0, start_c in 0.0f64..120.0, dt_s in 0.001f64..10.0) {
        let model = ThermalModel::mobile_default();
        let target = model.steady_state(Power::from_watts(power_w)).as_celsius();
        let mut state = ThermalState::at_ambient(&model);
        // Force an arbitrary starting temperature via a long step at the
        // power that gives `start_c` as steady state.
        let r = model.r_die_k_per_w;
        let p_start = ((start_c - model.ambient.as_celsius()) / r).max(0.0);
        state.step(&model, Power::from_watts(p_start), TimeSpan::from_secs(1e9));
        let t0 = state.die_temp().as_celsius();
        state.step(&model, Power::from_watts(power_w), TimeSpan::from_secs(dt_s));
        let t1 = state.die_temp().as_celsius();
        // t1 must lie between t0 and the target (no overshoot, monotone).
        let lo = t0.min(target) - 1e-9;
        let hi = t0.max(target) + 1e-9;
        prop_assert!(t1 >= lo && t1 <= hi, "t0={t0} t1={t1} target={target}");
    }

    /// Platform predictions scale linearly in workload MACs and are
    /// monotone in frequency, for every cluster of every preset.
    #[test]
    fn prediction_monotonicity(scale in 0.05f64..4.0) {
        for soc in [presets::odroid_xu3(), presets::jetson_nano(), presets::flagship()] {
            let w = presets::reference_workload().scaled(scale);
            for (id, spec) in soc.clusters() {
                let placement = Placement::whole_cluster(id, spec);
                let mut prev_latency = f64::INFINITY;
                for opp in spec.opps().iter() {
                    let p = soc.predict(placement, opp.freq(), &w).unwrap();
                    prop_assert!(p.latency.as_secs() > 0.0);
                    prop_assert!(p.latency.as_secs() < prev_latency);
                    prop_assert!(p.power.as_watts() > 0.0);
                    prev_latency = p.latency.as_secs();
                }
            }
        }
    }

    /// The exhaustive governor's answer always satisfies the requirements
    /// it was given, whatever they are.
    #[test]
    fn governor_answers_are_feasible(lat_ms in 50.0f64..2000.0, e_mj in 20.0f64..400.0) {
        let soc = presets::odroid_xu3();
        let profile = DnnProfile::reference("dnn");
        let space = OpSpace::new(&soc, &profile, OpSpaceConfig::default()).unwrap();
        let req = Requirements::new()
            .with_max_latency(TimeSpan::from_millis(lat_ms))
            .with_max_energy(Energy::from_millijoules(e_mj));
        if let Some(pt) = ExhaustiveGovernor
            .decide(&space, &req, Objective::default())
            .unwrap()
        {
            prop_assert!(pt.latency.as_millis() <= lat_ms + 1e-9);
            prop_assert!(pt.energy.as_millijoules() <= e_mj + 1e-9);
        }
    }

    /// Pareto and exhaustive governors agree for every budget (the cached
    /// frontier loses no optima).
    #[test]
    fn pareto_equals_oracle(lat_ms in 50.0f64..2000.0, e_mj in 20.0f64..400.0) {
        let soc = presets::odroid_xu3();
        let profile = DnnProfile::reference("dnn");
        let space = OpSpace::new(&soc, &profile, OpSpaceConfig::default()).unwrap();
        let req = Requirements::new()
            .with_max_latency(TimeSpan::from_millis(lat_ms))
            .with_max_energy(Energy::from_millijoules(e_mj));
        let oracle = ExhaustiveGovernor
            .decide(&space, &req, Objective::default())
            .unwrap();
        let cached = ParetoGovernor::new()
            .decide(&space, &req, Objective::default())
            .unwrap();
        match (oracle, cached) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                // Same objective value (op may differ only on exact ties).
                prop_assert_eq!(a.top1_percent, b.top1_percent);
                prop_assert!((a.energy.as_joules() - b.energy.as_joules()).abs() < 1e-12);
            }
            (a, b) => prop_assert!(false, "oracle {a:?} vs pareto {b:?}"),
        }
    }
}
