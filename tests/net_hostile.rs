//! Hostile-client integration suite for the networked serving front
//! end: one well-behaved client and one adversarial client share a
//! live server. The adversary's oversize frames, protocol garbage,
//! floods and stalled half-frames all earn typed rejections and
//! eventually a ban; the well-behaved client keeps completing
//! inferences throughout; the server never panics; and the executor's
//! extended accounting invariant holds end to end, including across
//! the graceful drain-and-shutdown.
//!
//! Deterministic: fixed RNG seed, no dependence on wall-clock beyond
//! generous deadlines (the CI host is slow and single-core).

use std::time::Duration;

use emlrt::net::{
    frame, AdmissionConfig, ClientError, NetClient, NetConfig, NetServer, WireStatus,
};
use emlrt::prelude::*;
use emlrt::serve::testbed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SAMPLE_LEN: usize = 3 * 8 * 8;
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(30);

fn random_sample(rng: &mut StdRng) -> Vec<f32> {
    (0..SAMPLE_LEN)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect()
}

/// A server over one registered tiny DNN, tuned so the hostile
/// choreography below crosses the ban threshold deterministically:
/// oversize (3) + stall (3) + unknown tag (2) + malformed (2) puts the
/// adversary at 10; two flood violations (1 each) reach the threshold
/// of 12. Score decay is off so slow CI cannot rehabilitate mid-test,
/// and the ban window outlives the test so reconnects stay shunned.
fn hostile_testbed_server() -> NetServer {
    let exec = Executor::new(ExecutorConfig::default());
    exec.register_dnn("cam", testbed::tiny_dnn(11), &Requirements::new())
        .unwrap();
    let cfg = NetConfig {
        read_tick: Duration::from_millis(10),
        frame_deadline: Duration::from_millis(150),
        idle_timeout: Duration::from_secs(20),
        reply_wait: Duration::from_secs(20),
        admission: AdmissionConfig {
            bucket_capacity: 8.0,
            refill_per_sec: 50.0,
            ban_threshold: 12.0,
            score_decay_per_sec: 0.0,
            ban_base: Duration::from_secs(120),
            ..AdmissionConfig::default()
        },
        ..NetConfig::default()
    };
    NetServer::bind(cfg, exec).expect("bind loopback")
}

fn expect_status(client: &mut NetClient, want: WireStatus) {
    let (status, _payload) = client.read_status().expect("a typed reply");
    assert_eq!(status, want);
}

fn expect_closed(client: &mut NetClient) {
    match client.read_status() {
        Err(ClientError::Closed) => {}
        other => panic!("expected the server to close, got {other:?}"),
    }
}

/// The adversary's campaign, one scored violation class per act. Every
/// act gets a *typed* rejection — no hang, no panic, no silent drop —
/// and the final act finds the identity banned on a fresh connection.
fn run_mallory(addr: std::net::SocketAddr) {
    let id = "mallory";

    // Act 1 — oversize frame: a header declaring a payload over the cap
    // is rejected from the header alone and the connection is closed.
    let mut c = NetClient::connect(addr, CLIENT_READ_TIMEOUT).unwrap();
    c.hello(id).unwrap();
    let mut header = ((frame::DEFAULT_MAX_PAYLOAD as u32) + 1)
        .to_le_bytes()
        .to_vec();
    header.push(3);
    c.send_raw(&header).unwrap();
    expect_status(&mut c, WireStatus::Oversize);
    expect_closed(&mut c);

    // Act 2 — slowloris: start a frame, never finish it. The read
    // deadline fires, the stall is scored, the connection is closed.
    let mut c = NetClient::connect(addr, CLIENT_READ_TIMEOUT).unwrap();
    c.hello(id).unwrap();
    c.send_raw(&frame::encode(3, &[0u8; 64])[..7]).unwrap();
    expect_status(&mut c, WireStatus::Stalled);
    expect_closed(&mut c);

    // Act 3 — protocol garbage, then a flood. Garbage is survivable
    // (typed, scored, connection stays open); the flood drains the
    // token bucket and the flood violations push the score over the
    // ban threshold.
    let mut c = NetClient::connect(addr, CLIENT_READ_TIMEOUT).unwrap();
    c.hello(id).unwrap();
    c.send_raw(&frame::encode(0xEE, b"junk")).unwrap();
    expect_status(&mut c, WireStatus::UnknownTag);
    c.send_raw(&frame::encode(3, &[0xFF; 3])).unwrap();
    expect_status(&mut c, WireStatus::Malformed);

    let mut saw_rate_limited = 0u32;
    let mut banned = false;
    let mut rng = StdRng::seed_from_u64(99);
    let sample = random_sample(&mut rng);
    for _ in 0..400 {
        match c.submit("cam", &sample) {
            Ok(_) => {}
            Err(ClientError::Status {
                status: WireStatus::RateLimited,
                ..
            }) => saw_rate_limited += 1,
            Err(ClientError::Status {
                status: WireStatus::Banned,
                ..
            }) => {
                banned = true;
                break;
            }
            // Typed executor-side refusals (back-pressure) are legal
            // mid-flood; anything else is a protocol break.
            Err(ClientError::Status { .. }) => {}
            Err(ClientError::Closed) => {
                // The ban reply can race the close; the reconnect check
                // below still must observe the ban.
                banned = true;
                break;
            }
            Err(e) => panic!("flood met an untyped failure: {e:?}"),
        }
    }
    assert!(banned, "the flood never crossed the ban threshold");
    assert!(
        saw_rate_limited >= 1,
        "the token bucket never pushed back before the ban"
    );
    expect_closed(&mut c);

    // Act 4 — the ban sticks to the identity across reconnects.
    let mut c = NetClient::connect(addr, CLIENT_READ_TIMEOUT).unwrap();
    match c.hello(id) {
        Err(ClientError::Status {
            status: WireStatus::Banned,
            ..
        }) => {}
        other => panic!("reconnect should be shunned, got {other:?}"),
    }
    expect_closed(&mut c);
}

/// The well-behaved tenant: paced submits, every one of which must
/// complete with a real prediction while the adversary rages.
fn run_alice(addr: std::net::SocketAddr, requests: usize) -> usize {
    let mut c = NetClient::connect(addr, CLIENT_READ_TIMEOUT).unwrap();
    c.hello("alice").unwrap();
    c.ping().unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mut completed = 0usize;
    for _ in 0..requests {
        let sample = random_sample(&mut rng);
        let done = c
            .submit("cam", &sample)
            .expect("a paced tenant always completes");
        assert_eq!(done.logits.len(), 4);
        assert!((done.pred as usize) < done.logits.len());
        assert!(done.logits.iter().all(|l| l.is_finite()));
        completed += 1;
        std::thread::sleep(Duration::from_millis(20));
    }
    completed
}

#[test]
fn hostile_client_is_contained_while_the_well_behaved_tenant_serves() {
    const ALICE_REQUESTS: usize = 20;
    let mut server = hostile_testbed_server();
    let addr = server.local_addr();

    let alice = std::thread::spawn(move || run_alice(addr, ALICE_REQUESTS));
    run_mallory(addr);
    let alice_completed = alice.join().expect("alice's thread must not panic");
    assert_eq!(alice_completed, ALICE_REQUESTS);

    // The adversary left a visible trail in the admission registry.
    let admission = server.admission();
    assert!(admission.bans() >= 1, "no ban was recorded");
    assert!(
        admission.violations() >= 6,
        "expected the full violation trail, saw {}",
        admission.violations()
    );
    let net_before = server.stats();
    assert_eq!(net_before.conn_panics, 0, "a connection handler panicked");
    assert!(net_before.banned_replies >= 2, "{net_before:?}");
    assert!(net_before.rate_limited >= 1, "{net_before:?}");

    // Graceful drain-and-shutdown, then the books must balance: every
    // submit the front end pushed into the executor is accounted for as
    // a completion, typed error, rejection or shed — nothing vanished
    // across the shutdown.
    server.shutdown();
    let net = server.stats();
    let s = server.executor().stats("cam").unwrap();
    let attempts = net.exec_submitted + net.exec_rejected;
    assert_eq!(
        attempts + s.storm_injected,
        s.completed + s.errors + s.rejected + s.shed,
        "accounting broke across drain-and-shutdown: net={net:?} app={s:?}"
    );
    assert!(
        s.completed >= ALICE_REQUESTS as u64,
        "alice's completions must be in the executor's books: {s:?}"
    );
    // The front end's reply ledger is consistent with what it submitted.
    assert_eq!(
        net.exec_submitted,
        net.completions + net.ticket_errors,
        "{net:?}"
    );
}

/// Protocol basics under one roof: hello/ping/submit succeed, a
/// malformed ping is a typed violation that does not kill the
/// connection, and an unknown app is a typed serving error that is
/// *not* scored as abuse (honest version skew must not earn a ban).
#[test]
fn typed_errors_do_not_cost_an_honest_client_its_connection() {
    let mut server = hostile_testbed_server();
    let addr = server.local_addr();
    let mut c = NetClient::connect(addr, CLIENT_READ_TIMEOUT).unwrap();
    c.hello("bob").unwrap();
    c.ping().unwrap();

    // A ping with a payload is malformed: scored, typed, survivable.
    c.send_raw(&frame::encode(2, b"x")).unwrap();
    expect_status(&mut c, WireStatus::Malformed);

    // Unknown app and shape mismatch surface the serving layer's own
    // typed errors through the wire, with their stable codes.
    let mut rng = StdRng::seed_from_u64(3);
    let sample = random_sample(&mut rng);
    match c.submit("ghost", &sample) {
        Err(ClientError::Status {
            status: WireStatus::UnknownApp,
            message,
        }) => assert!(message.contains("ghost"), "{message}"),
        other => panic!("expected a typed UnknownApp, got {other:?}"),
    }
    match c.submit("cam", &sample[..7]) {
        Err(ClientError::Status {
            status: WireStatus::ShapeMismatch,
            ..
        }) => {}
        other => panic!("expected a typed ShapeMismatch, got {other:?}"),
    }

    // Honest mistakes did not dent the scorer — only the ping did —
    // and the connection still serves real work.
    assert_eq!(server.admission().violations(), 1);
    let done = c.submit("cam", &sample).expect("still serving");
    assert_eq!(done.logits.len(), 4);

    // Graceful shutdown still balances the books for this quiet run.
    server.shutdown();
    let net = server.stats();
    let s = server.executor().stats("cam").unwrap();
    assert_eq!(net.conn_panics, 0);
    assert_eq!(
        (net.exec_submitted + net.exec_rejected) + s.storm_injected,
        s.completed + s.errors + s.rejected + s.shed,
        "net={net:?} app={s:?}"
    );
}
