//! Shared-pool scale battery: 100+ registered tenants on a fixed
//! two-driver worker pool.
//!
//! The PR 7 executor refactor replaced thread-per-app serving with a
//! bounded-registry shared pool: a small fixed set of driver threads
//! pulls from a weighted earliest-deadline-first ready order across
//! every registered app. This suite is the scale proof:
//!
//! - **Scale soak** — a seeded `eml_sim::workload` scenario with 100+
//!   dynamic tenants, rigid interference, register/deregister churn
//!   and a flash crowd, replayed through the live executor. The driver
//!   thread count is asserted equal to the configured pool size before,
//!   during and after — provably independent of the tenant count. The
//!   extended accounting invariant is **exact** across live apps *and*
//!   retired lifetimes, and two runs from the same seed produce the
//!   bit-identical outcome digest.
//! - **Starvation regression** — a fat-deadline tenant sharing one
//!   driver with a flash crowd of tight-deadline floods still completes
//!   at least its weighted share: the weighted-EDF virtual deadline
//!   guarantees its turn comes up even while the crowd saturates the
//!   pool.
//! - **Registry cap at scale** — the 101st tenant of a 100-cap
//!   registry is refused with the typed
//!   [`ServeError::OverCapacity`], and serving continues unharmed.
//!
//! Like the workload soak, digests fold `completed + errors + shed`
//! into one "settled" number per app: the split can move with
//! wall-clock scheduling, the sum may not drift by one.

use std::sync::Arc;
use std::time::Duration;

use emlrt::prelude::*;
use emlrt::rtm::opspace::{EvaluatedPoint, OperatingPoint};
use emlrt::rtm::rtm::{Allocation, DnnAllocation};
use emlrt::serve::testbed;
use emlrt::serve::{ExecutedReplay, FaultKind, FaultPlan, Ticket};
use emlrt::sim::workload::{self, WorkloadConfig};
use emlrt::sim::{ChaosFault, ExecutionBackend, SimConfig, Simulator};

const TIMEOUT: Duration = Duration::from_secs(60);
const SAMPLE_LEN: usize = 3 * 8 * 8;
const POOL_WORKERS: usize = 2;

/// Pure lifecycle replay: arrivals, departures, allocations, chaos —
/// no pressure policy (the ladder is the workload soak's concern; this
/// suite isolates the pool).
struct ScaleBackend<'a> {
    replay: ExecutedReplay<'a>,
    exec: &'a Executor,
    /// Worst driver-pool shape observed at any lifecycle edge, to prove
    /// the pool never grew (or lost a driver) mid-run.
    max_drivers_seen: usize,
}

impl ScaleBackend<'_> {
    fn check_pool(&mut self) {
        let p = self.exec.pool_stats();
        self.max_drivers_seen = self.max_drivers_seen.max(p.drivers);
        assert_eq!(
            p.drivers, POOL_WORKERS,
            "driver count drifted with tenant count: {p:?}"
        );
    }
}

impl ExecutionBackend for ScaleBackend<'_> {
    fn on_allocation(&mut self, at_secs: f64, allocation: &Allocation) {
        self.replay.on_allocation(at_secs, allocation);
    }

    fn measure(&mut self, app: &str, predicted: TimeSpan) -> Option<TimeSpan> {
        self.replay.measure(app, predicted)
    }

    fn on_chaos(&mut self, at_secs: f64, app: &str, fault: &ChaosFault) {
        self.replay.on_chaos(at_secs, app, fault);
    }

    fn on_arrive(&mut self, at_secs: f64, spec: &emlrt::rtm::rtm::AppSpec) {
        self.replay.on_arrive(at_secs, spec);
        self.check_pool();
    }

    fn on_depart(&mut self, at_secs: f64, app: &str) {
        self.replay.on_depart(at_secs, app);
        self.check_pool();
    }
}

struct ScaleOutcome {
    schedule_digest: u64,
    outcome_digest: u64,
    apps_live: usize,
    dnn_apps_live: usize,
    retired_lifetimes: u64,
    total_storms: u64,
}

fn run_scale(seed: u64) -> ScaleOutcome {
    let wl = workload::generate(&WorkloadConfig {
        seed,
        dnn_apps: 104,
        rigid_apps: 4,
        churn_cycles: 8,
        duration_secs: 20.0,
        ..WorkloadConfig::default()
    });
    assert!(wl.dnn_apps >= 100, "acceptance floor: 100+ dynamic tenants");
    assert!(wl.churn_cycles >= 5, "churn must be scheduled");
    assert!(wl.flash_storms >= 1, "flash crowd must be scheduled");

    let exec = Executor::new(ExecutorConfig {
        pool_workers: POOL_WORKERS,
        max_apps: 256,
        ..ExecutorConfig::default()
    });
    let mut backend = ScaleBackend {
        replay: ExecutedReplay::new(&exec)
            .with_app_builder(|spec| testbed::tiny_dnn(workload::fnv1a64(&spec.name))),
        exec: &exec,
        max_drivers_seen: 0,
    };

    let sim = Simulator::new(
        emlrt::platform::presets::flagship(),
        wl.events.clone(),
        SimConfig {
            duration: TimeSpan::from_secs(20.0),
            sample_every: TimeSpan::from_millis(500.0),
            ..SimConfig::default()
        },
    )
    .expect("generated schedule is valid");
    sim.run_executed(&mut backend)
        .expect("scale soak completes");
    exec.drain();

    // The pool: exactly as configured, all drivers alive, through a
    // hundred registrations and every churn edge.
    let p = exec.pool_stats();
    assert_eq!(p.drivers, POOL_WORKERS, "{p:?}");
    assert_eq!(p.live_drivers, POOL_WORKERS, "a driver died: {p:?}");
    assert_eq!(backend.max_drivers_seen, POOL_WORKERS);
    assert!(p.apps >= 100, "tenant floor after churn re-arrivals: {p:?}");
    assert!(p.apps <= p.max_apps, "{p:?}");
    assert_eq!(p.queue_depth + p.in_flight, 0, "drained: {p:?}");

    // Exact extended accounting across live apps and retired lifetimes.
    let names = exec.app_names();
    let mut live = Vec::new();
    for name in &names {
        if let Ok(s) = exec.stats(name) {
            live.push((name.clone(), s));
        }
    }
    let retired = backend.replay.retired();
    let live_settled: u64 = live
        .iter()
        .map(|(_, s)| s.completed + s.errors + s.rejected + s.shed)
        .sum();
    let live_storms: u64 = live.iter().map(|(_, s)| s.storm_injected).sum();
    let total_storms = live_storms + retired.storm_injected;
    assert_eq!(
        backend.replay.total_attempts() + total_storms,
        live_settled + retired.completed + retired.errors + retired.rejected + retired.shed,
        "extended accounting drifted at scale: retired={retired:?}"
    );

    // Per-app FIFO survived the shared pool at every tenant.
    for (name, s) in &live {
        assert_eq!(s.out_of_order, 0, "{name}: {s:?}");
    }

    // The outcome digest: schedule + per-app settled counters.
    let mut canon = format!("schedule={:016x}\n", wl.digest);
    for (name, s) in &live {
        canon.push_str(&format!(
            "app={} attempts={} rejected={} storms={} settled={}\n",
            name,
            backend.replay.attempts(name),
            s.rejected,
            s.storm_injected,
            s.completed + s.errors + s.shed,
        ));
    }
    canon.push_str(&format!(
        "retired lifetimes={} settled={} storms={}\n",
        retired.lifetimes,
        retired.completed + retired.errors + retired.rejected + retired.shed,
        retired.storm_injected,
    ));

    ScaleOutcome {
        schedule_digest: wl.digest,
        outcome_digest: workload::fnv1a64(&canon),
        apps_live: p.apps,
        dnn_apps_live: live.len(),
        retired_lifetimes: retired.lifetimes,
        total_storms,
    }
}

/// The acceptance soak: 100+ tenants, two drivers, churn and flash
/// crowd, exact lifetime accounting — twice from the same seed, with a
/// bit-identical outcome digest.
#[test]
fn hundred_tenants_on_two_drivers_account_exactly_and_reproduce() {
    let a = run_scale(0x9001_5EED);
    assert!(a.apps_live >= 100, "{}", a.apps_live);
    assert!(a.dnn_apps_live >= 100, "{}", a.dnn_apps_live);
    assert!(
        a.retired_lifetimes >= 5,
        "churn must have completed deregistrations: {}",
        a.retired_lifetimes
    );
    assert!(a.total_storms >= 1, "the flash crowd must have landed");

    let b = run_scale(0x9001_5EED);
    assert_eq!(a.schedule_digest, b.schedule_digest, "schedule must replay");
    assert_eq!(
        a.outcome_digest, b.outcome_digest,
        "same seed must reproduce the outcome digest bit-for-bit"
    );
}

/// Hand-builds the minimal allocation the executor consumes: one
/// placed operating point per named app, `cores` becoming the app's
/// band cap — the weight of its EDF budget in the shared ready order.
fn weight_allocation(weights: &[(&str, u32)]) -> Allocation {
    Allocation {
        dnns: weights
            .iter()
            .map(|&(app, cores)| DnnAllocation {
                app: app.to_string(),
                point: EvaluatedPoint {
                    op: OperatingPoint {
                        cluster: ClusterId::from_index(0),
                        cores,
                        opp_index: 0,
                        level: emlrt::dnn::WidthLevel(0),
                    },
                    latency: TimeSpan::from_micros(50.0),
                    power: Power::from_milliwatts(100.0),
                    energy: Energy::from_millijoules(0.01),
                    top1_percent: 70.0,
                },
                cluster_name: "quad".to_string(),
                freq: Freq::from_mhz(1600.0),
                sharers: weights.len(),
                violations: Vec::new(),
            })
            .collect(),
        rigid: Vec::new(),
        unplaced: Vec::new(),
        gated: Vec::new(),
        total_power: Power::from_milliwatts(500.0),
        power_cap: Power::from_watts(10.0),
    }
}

/// Starvation regression: a fat-deadline tenant (2 s deadline, weight
/// 4) shares a *single* driver with six tight-deadline crowd tenants
/// whose every request is inflated to ~20 ms by injected latency
/// spikes — far more work than their 40 ms deadlines admit. Weighted
/// EDF must still serve the fat tenant its full share: its virtual
/// deadline (arrival + 2 s / 4) comes up while the crowd's backlog is
/// shedding, so it completes every request instead of starving behind
/// the flood.
#[test]
fn fat_deadline_tenant_is_not_starved_by_a_flash_crowd() {
    const CROWD: usize = 6;
    const CROWD_REQS: usize = 6;
    const FAT_REQS: usize = 8;

    // Every crowd request spikes to 20 ms: the crowd alone carries
    // ~720 ms of service against 40 ms deadlines — a guaranteed
    // overload for the single driver.
    let mut plan = FaultPlan::new();
    for i in 0..CROWD {
        for seq in 0..CROWD_REQS as u64 {
            plan = plan.with_fault(
                format!("crowd-{i}"),
                seq,
                FaultKind::LatencySpike(TimeSpan::from_millis(20.0)),
            );
        }
    }
    let exec = Executor::new(ExecutorConfig {
        pool_workers: 1,
        // One request per batch: each crowd claim burns one full spike.
        batch_cap: 1,
        fault_plan: Some(Arc::new(plan)),
        ..ExecutorConfig::default()
    });
    for i in 0..CROWD {
        exec.register_dnn(
            format!("crowd-{i}"),
            testbed::tiny_dnn(i as u64),
            &Requirements::new().with_max_latency(TimeSpan::from_millis(40.0)),
        )
        .unwrap();
    }
    exec.register_dnn(
        "fat",
        testbed::tiny_dnn(99),
        &Requirements::new().with_max_latency(TimeSpan::from_secs(2.0)),
    )
    .unwrap();
    let p = exec.pool_stats();
    assert_eq!(
        (p.drivers, p.live_drivers),
        (1, 1),
        "seven tenants, still one driver: {p:?}"
    );

    // Weight the fat tenant 4× through the allocation surface, exactly
    // as an RTM core grant would.
    let mut weights: Vec<(String, u32)> = (0..CROWD).map(|i| (format!("crowd-{i}"), 1)).collect();
    weights.push(("fat".to_string(), 4));
    let weights_ref: Vec<(&str, u32)> = weights.iter().map(|(n, c)| (n.as_str(), *c)).collect();
    exec.apply_allocation(&weight_allocation(&weights_ref));

    // Queue the whole flood while paused, fat last — worst case for
    // the fat tenant: the crowd's backlog is already ahead of it.
    let sample = vec![0.25f32; SAMPLE_LEN];
    for i in 0..CROWD {
        exec.pause(&format!("crowd-{i}")).unwrap();
    }
    exec.pause("fat").unwrap();
    let mut crowd_tickets: Vec<Ticket> = Vec::new();
    for _round in 0..CROWD_REQS {
        for i in 0..CROWD {
            crowd_tickets.push(exec.submit(&format!("crowd-{i}"), &sample).unwrap());
        }
    }
    let fat_tickets: Vec<Ticket> = (0..FAT_REQS)
        .map(|_| exec.submit("fat", &sample).unwrap())
        .collect();
    for i in 0..CROWD {
        exec.resume(&format!("crowd-{i}")).unwrap();
    }
    exec.resume("fat").unwrap();

    // Every ticket resolves typed — completion or shed, never lost.
    let mut fat_completed = 0u64;
    for t in &fat_tickets {
        match t.wait_timeout(TIMEOUT) {
            Ok(_) => fat_completed += 1,
            Err(ServeError::DeadlineExpired { .. }) => {}
            Err(e) => panic!("fat ticket #{} lost: {e}", t.seq()),
        }
    }
    for t in &crowd_tickets {
        match t.wait_timeout(TIMEOUT) {
            Ok(_) | Err(ServeError::DeadlineExpired { .. }) => {}
            Err(e) => panic!("crowd ticket {}#{} lost: {e}", t.app(), t.seq()),
        }
    }
    exec.drain();

    // The weighted share: at least 75 % of the fat tenant's requests
    // complete despite the overloading crowd (in practice all of them:
    // its 2 s deadline dwarfs the crowd's shedding backlog).
    assert!(
        fat_completed >= (FAT_REQS as u64 * 3).div_ceil(4),
        "fat tenant starved: {fat_completed}/{FAT_REQS}"
    );
    let fat = exec.stats("fat").unwrap();
    assert_eq!(fat.out_of_order, 0, "{fat:?}");
    assert_eq!(fat.band_cap, 4, "the weight grant survived: {fat:?}");
    assert_eq!(
        FAT_REQS as u64 + fat.storm_injected,
        fat.completed + fat.errors + fat.rejected + fat.shed,
        "fat accounting drifted: {fat:?}"
    );

    // The crowd genuinely overloaded: its deadlines forced sheds, and
    // its own accounting stays exact per tenant.
    let mut crowd_shed = 0u64;
    for i in 0..CROWD {
        let s = exec.stats(&format!("crowd-{i}")).unwrap();
        crowd_shed += s.shed;
        assert_eq!(
            CROWD_REQS as u64 + s.storm_injected,
            s.completed + s.errors + s.rejected + s.shed,
            "crowd-{i} accounting drifted: {s:?}"
        );
    }
    assert!(crowd_shed > 0, "the flood never overloaded the pool");
}

/// The bounded registry at its acceptance scale: tenant number 101 of
/// a 100-cap registry is refused with the typed error, the pool shape
/// is untouched, and serving continues.
#[test]
fn registry_cap_holds_at_one_hundred_tenants() {
    let exec = Executor::new(ExecutorConfig {
        pool_workers: POOL_WORKERS,
        max_apps: 100,
        ..ExecutorConfig::default()
    });
    exec.register_dnn(
        "dnn-000",
        testbed::tiny_dnn(7),
        &Requirements::new().with_max_latency(TimeSpan::from_secs(1.0)),
    )
    .unwrap();
    for i in 1..100 {
        exec.register_rigid(format!("rigid-{i:03}")).unwrap();
    }
    assert_eq!(
        exec.register_rigid("rigid-100").unwrap_err(),
        ServeError::OverCapacity {
            app: "rigid-100".into(),
            capacity: 100
        }
    );
    let p = exec.pool_stats();
    assert_eq!((p.apps, p.max_apps), (100, 100), "{p:?}");
    assert_eq!(p.drivers, POOL_WORKERS, "{p:?}");
    // A full registry refuses newcomers, never service.
    exec.submit("dnn-000", &vec![0.1f32; SAMPLE_LEN])
        .unwrap()
        .wait_timeout(TIMEOUT)
        .unwrap();
    exec.drain();
    assert_eq!(exec.stats("dnn-000").unwrap().completed, 1);
}
