//! Generated-workload soak: a seeded synthetic scenario — ≥ 20
//! dynamic tenants with heavy-tailed sizes/deadlines, rigid co-tenant
//! interference, a flash crowd, ≥ 5 register/deregister churn cycles
//! and injected faults — replayed through the *live* executor
//! ([`eml_sim::Simulator::run_executed`] + lifecycle-driving
//! [`ExecutedReplay`]), with a health-scored [`PressurePolicy`]
//! watching the hot tenant.
//!
//! Required outcomes:
//!
//! - the run completes (no deadlock, no lost ticket — `drain` returns);
//! - the extended accounting invariant is **exact** across churn:
//!   `attempts + storm_injected == completed + errors + rejected +
//!   shed`, summed over live apps *and* retired lifetimes;
//! - the hot app sees at least one health-driven degrade and a
//!   subsequent restore;
//! - two runs from the same seed produce the **bit-identical** outcome
//!   digest (schedule digest + per-app settled counters + ladder).
//!
//! The digest deliberately folds `completed + errors + shed` into one
//! "settled" number per app: the *split* between a completion, a typed
//! crash error and a deadline shed can legitimately move with
//! wall-clock scheduling (a request submitted while a crashed thread
//! restarts may expire or complete), but their *sum* — every attempt
//! ever ticketed plus every storm rider — may not drift by even one.

use emlrt::prelude::*;
use emlrt::rtm::rtm::Allocation;
use emlrt::serve::testbed;
use emlrt::serve::{ExecutedReplay, PressureAction, PressureConfig, PressurePolicy};
use emlrt::sim::workload::{self, WorkloadConfig};
use emlrt::sim::{ChaosFault, ExecutionBackend, SimConfig, Simulator};

/// Lifecycle replay + a health-scored pressure ladder on the hot app,
/// ticked at every measurement so calm recovery is observed promptly.
struct SoakBackend<'a> {
    replay: ExecutedReplay<'a>,
    exec: &'a Executor,
    policy: PressurePolicy,
    ladder: Vec<char>,
}

impl ExecutionBackend for SoakBackend<'_> {
    fn on_allocation(&mut self, at_secs: f64, allocation: &Allocation) {
        self.replay.on_allocation(at_secs, allocation);
    }

    fn measure(&mut self, app: &str, predicted: TimeSpan) -> Option<TimeSpan> {
        let m = self.replay.measure(app, predicted);
        // Tick exactly once per hot measurement, *after* it: the hot
        // app's batch has just applied any pending knob command (and
        // its window reset), so every tick observes settled knob state
        // — ticking faster would let further rungs fire on a stale
        // window while an actuation is still queued.
        if app == workload::HOT_APP {
            match self.policy.tick(self.exec, workload::HOT_APP) {
                Some(PressureAction::Degraded { .. }) => self.ladder.push('d'),
                Some(PressureAction::Restored { .. }) => self.ladder.push('r'),
                _ => {}
            }
        }
        m
    }

    fn on_chaos(&mut self, at_secs: f64, app: &str, fault: &ChaosFault) {
        self.replay.on_chaos(at_secs, app, fault);
    }

    fn on_arrive(&mut self, at_secs: f64, spec: &emlrt::rtm::rtm::AppSpec) {
        self.replay.on_arrive(at_secs, spec);
    }

    fn on_depart(&mut self, at_secs: f64, app: &str) {
        self.replay.on_depart(at_secs, app);
    }
}

struct SoakOutcome {
    schedule_digest: u64,
    outcome_digest: u64,
    ladder: Vec<char>,
    dnn_apps_live: usize,
    retired_lifetimes: u64,
    total_storms: u64,
}

fn run_soak(seed: u64) -> SoakOutcome {
    let wl = workload::generate(&WorkloadConfig {
        seed,
        duration_secs: 30.0,
        ..WorkloadConfig::default()
    });
    assert!(wl.dnn_apps >= 20, "acceptance floor: ≥ 20 dynamic tenants");
    assert!(wl.churn_cycles >= 5, "acceptance floor: ≥ 5 churn cycles");
    assert!(wl.flash_storms >= 1, "flash crowd must be scheduled");
    assert_eq!(wl.hot_app.as_deref(), Some(workload::HOT_APP));

    let exec = Executor::new(ExecutorConfig {
        // A short stats window so the hot app's four spike misses pull
        // the windowed miss rate to 0.5 (score 60 < the 65 pressure
        // line) and a clean window refills fast after the degrade.
        stats_window: 8,
        ..ExecutorConfig::default()
    });
    let mut backend = SoakBackend {
        replay: ExecutedReplay::new(&exec)
            .with_app_builder(|spec| testbed::tiny_dnn(workload::fnv1a64(&spec.name))),
        exec: &exec,
        policy: PressurePolicy::new(PressureConfig {
            health: HealthConfig {
                // Two fresh outcomes are enough to trust the window
                // again after a knob-driven reset.
                min_outcomes: 2,
                // Pool-wide queue depth is timing dependent; scoring
                // it would make the ladder (and thus the outcome
                // digest) wobble run to run.
                w_pool_queue: 0.0,
                ..HealthConfig::default()
            },
            recover_ticks: 2,
            ..PressureConfig::default()
        }),
        ladder: Vec::new(),
    };

    let sim = Simulator::new(
        emlrt::platform::presets::flagship(),
        wl.events.clone(),
        SimConfig {
            duration: TimeSpan::from_secs(30.0),
            sample_every: TimeSpan::from_millis(500.0),
            ..SimConfig::default()
        },
    )
    .expect("generated schedule is valid");
    sim.run_executed(&mut backend).expect("soak completes");

    // Quiesce before counting: late storm riders may still be in
    // flight when the simulated clock runs out.
    exec.drain();

    // Extended accounting across churn: every attempt and every storm
    // rider is settled somewhere, across live apps and retired
    // lifetimes alike.
    let names = exec.app_names();
    let mut live = Vec::new();
    for name in &names {
        if let Ok(s) = exec.stats(name) {
            live.push((name.clone(), s));
        }
    }
    let retired = backend.replay.retired();
    let live_settled: u64 = live
        .iter()
        .map(|(_, s)| s.completed + s.errors + s.rejected + s.shed)
        .sum();
    let live_storms: u64 = live.iter().map(|(_, s)| s.storm_injected).sum();
    let total_storms = live_storms + retired.storm_injected;
    assert_eq!(
        backend.replay.total_attempts() + total_storms,
        live_settled + retired.completed + retired.errors + retired.rejected + retired.shed,
        "extended accounting drifted across churn: retired={retired:?}"
    );

    // Health telemetry stays coherent over the final population.
    let mut monitor = HealthMonitor::new(HealthConfig::default());
    let report = monitor.observe(&exec);
    assert_eq!(report.apps.len(), live.len(), "one health row per DNN app");
    assert!((0.0..=100.0).contains(&report.aggregate));
    assert!(report.to_json().starts_with('{'));

    // Outcome digest: schedule + per-app settled counters (split-safe,
    // see module docs) + the hot app's ladder.
    let mut canon = format!("schedule={:016x}\n", wl.digest);
    for (name, s) in &live {
        canon.push_str(&format!(
            "app={} attempts={} rejected={} storms={} settled={}\n",
            name,
            backend.replay.attempts(name),
            s.rejected,
            s.storm_injected,
            s.completed + s.errors + s.shed,
        ));
    }
    canon.push_str(&format!(
        "retired lifetimes={} settled={} storms={}\n",
        retired.lifetimes,
        retired.completed + retired.errors + retired.rejected + retired.shed,
        retired.storm_injected,
    ));
    canon.push_str(&format!(
        "ladder={}\n",
        backend.ladder.iter().collect::<String>()
    ));

    SoakOutcome {
        schedule_digest: wl.digest,
        outcome_digest: workload::fnv1a64(&canon),
        ladder: backend.ladder,
        dnn_apps_live: live.len(),
        retired_lifetimes: retired.lifetimes,
        total_storms,
    }
}

/// The acceptance soak: generated workload through executed replay,
/// twice from the same seed, with a bit-identical outcome digest.
#[test]
fn generated_workload_soak_is_reproducible() {
    let a = run_soak(0xBADC_0FFE);

    assert!(
        a.dnn_apps_live >= 20,
        "all dynamic tenants live at the end (churned ones re-arrived): {}",
        a.dnn_apps_live
    );
    assert!(
        a.retired_lifetimes >= 5,
        "≥ 5 deregistrations must have completed: {}",
        a.retired_lifetimes
    );
    assert!(a.total_storms >= 1, "the flash crowd must have landed");

    // Health-driven degrade, then restore, on the hot app.
    let first_d = a
        .ladder
        .iter()
        .position(|&c| c == 'd')
        .unwrap_or_else(|| panic!("no health-driven degrade: {:?}", a.ladder));
    assert!(
        a.ladder[first_d..].contains(&'r'),
        "no restore after the degrade: {:?}",
        a.ladder
    );

    let b = run_soak(0xBADC_0FFE);
    assert_eq!(a.schedule_digest, b.schedule_digest, "schedule must replay");
    assert_eq!(
        a.outcome_digest, b.outcome_digest,
        "same seed must reproduce the outcome digest bit-for-bit \
         (ladders: {:?} vs {:?})",
        a.ladder, b.ladder
    );
}
