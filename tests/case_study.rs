//! Integration test: the paper's §IV worked example through the public API,
//! across all three governor implementations.

use emlrt::platform::paper::{CASE_STUDY_BUDGET_1, CASE_STUDY_BUDGET_2};
use emlrt::prelude::*;

fn cpu_space<'a>(soc: &'a Soc, profile: &'a DnnProfile) -> OpSpace<'a> {
    let cpus = vec![
        soc.find_cluster("a15").unwrap(),
        soc.find_cluster("a7").unwrap(),
    ];
    OpSpace::new(soc, profile, OpSpaceConfig::default().with_clusters(cpus)).unwrap()
}

fn check_budget(governor: &mut dyn Governor, budget: &emlrt::platform::paper::CaseStudyBudget) {
    let soc = emlrt::platform::presets::odroid_xu3();
    let profile = DnnProfile::reference("dnn");
    let space = cpu_space(&soc, &profile);
    let req = Requirements::new()
        .with_max_latency(TimeSpan::from_millis(budget.time_ms))
        .with_max_energy(Energy::from_millijoules(budget.energy_mj));
    let pt = governor
        .decide(&space, &req, Objective::MaxAccuracyThenMinEnergy)
        .unwrap()
        .unwrap_or_else(|| panic!("{}: budget must be feasible", governor.name()));

    let cluster = soc.cluster(pt.op.cluster).unwrap();
    let freq = cluster.opps().get(pt.op.opp_index).unwrap().freq();
    assert_eq!(
        cluster.name(),
        budget.expect_cluster,
        "{}: wrong cluster for ({} ms, {} mJ)",
        governor.name(),
        budget.time_ms,
        budget.energy_mj
    );
    assert!(
        (freq.as_mhz() - budget.expect_freq_mhz).abs() < 0.5,
        "{}: {} MHz vs expected {}",
        governor.name(),
        freq.as_mhz(),
        budget.expect_freq_mhz
    );
    let width = (pt.op.level.index() + 1) as f64 * 0.25;
    assert!(
        (width - budget.expect_width).abs() < 1e-9,
        "{}: width {width} vs expected {}",
        governor.name(),
        budget.expect_width
    );
    // And the point actually meets the budgets.
    assert!(pt.latency.as_millis() <= budget.time_ms + 1e-9);
    assert!(pt.energy.as_millijoules() <= budget.energy_mj + 1e-9);
}

#[test]
fn exhaustive_governor_reproduces_both_budgets() {
    check_budget(&mut ExhaustiveGovernor, &CASE_STUDY_BUDGET_1);
    check_budget(&mut ExhaustiveGovernor, &CASE_STUDY_BUDGET_2);
}

#[test]
fn pareto_governor_reproduces_both_budgets() {
    // Fresh governor per budget and a shared one across budgets must agree.
    check_budget(&mut ParetoGovernor::new(), &CASE_STUDY_BUDGET_1);
    check_budget(&mut ParetoGovernor::new(), &CASE_STUDY_BUDGET_2);
    let mut shared = ParetoGovernor::new();
    check_budget(&mut shared, &CASE_STUDY_BUDGET_1);
    check_budget(&mut shared, &CASE_STUDY_BUDGET_2);
}

#[test]
fn greedy_governor_finds_the_same_optima_here() {
    // The hill-climber is not guaranteed optimal in general, but on this
    // well-behaved space it lands on the paper's answers too.
    check_budget(&mut GreedyGovernor::default(), &CASE_STUDY_BUDGET_1);
    check_budget(&mut GreedyGovernor::default(), &CASE_STUDY_BUDGET_2);
}

#[test]
fn budget_transition_shrinks_width_as_in_the_paper() {
    // Moving from budget 1 to budget 2 at runtime is exactly a dynamic-DNN
    // width switch plus a task migration — no retraining involved.
    let soc = emlrt::platform::presets::odroid_xu3();
    let profile = DnnProfile::reference("dnn");
    let space = cpu_space(&soc, &profile);
    let req1 = Requirements::new()
        .with_max_latency(TimeSpan::from_millis(CASE_STUDY_BUDGET_1.time_ms))
        .with_max_energy(Energy::from_millijoules(CASE_STUDY_BUDGET_1.energy_mj));
    let req2 = Requirements::new()
        .with_max_latency(TimeSpan::from_millis(CASE_STUDY_BUDGET_2.time_ms))
        .with_max_energy(Energy::from_millijoules(CASE_STUDY_BUDGET_2.energy_mj));
    let p1 = ExhaustiveGovernor
        .decide(&space, &req1, Objective::default())
        .unwrap()
        .unwrap();
    let p2 = ExhaustiveGovernor
        .decide(&space, &req2, Objective::default())
        .unwrap()
        .unwrap();
    assert!(
        p2.op.level < p1.op.level,
        "tighter latency forces narrower width"
    );
    assert_ne!(p1.op.cluster, p2.op.cluster, "and a migration (A7 -> A15)");
}

#[test]
fn infeasible_budget_is_reported_not_fudged() {
    let soc = emlrt::platform::presets::odroid_xu3();
    let profile = DnnProfile::reference("dnn");
    let space = cpu_space(&soc, &profile);
    // 10 ms on XU3 CPUs is impossible even for the 25% model.
    let req = Requirements::new().with_max_latency(TimeSpan::from_millis(10.0));
    assert!(ExhaustiveGovernor
        .decide(&space, &req, Objective::default())
        .unwrap()
        .is_none());
}
