//! Integration test: the Fig 2 scenario through the public `emlrt` API,
//! plus custom scenario variations.

use emlrt::prelude::*;
use emlrt::sim::scenario::{self, names};
use emlrt::sim::simulator::{Action, ScenarioEvent};
use emlrt::sim::DecisionReason;

#[test]
fn fig2_phases_from_public_api() {
    let trace = scenario::fig2_scenario().unwrap().run().unwrap();
    // Phase (a): NPU, full width.
    let a = trace.app_at(3.0, names::DNN1).unwrap();
    assert_eq!((a.cluster.as_str(), a.level), ("npu", 3));
    // Phase (b): displaced to GPU, compressed.
    let b = trace.app_at(10.0, names::DNN1).unwrap();
    assert_eq!(b.cluster, "gpu");
    assert!(b.level < 3);
    // Phase (c): big CPU.
    let c = trace.app_at(16.0, names::DNN1).unwrap();
    assert_eq!(c.cluster, "big");
    // Phase (d): both DNNs share the NPU, DNN1 at full width again.
    let d1 = trace.app_at(35.0, names::DNN1).unwrap();
    let d2 = trace.app_at(35.0, names::DNN2).unwrap();
    assert_eq!((d1.cluster.as_str(), d1.level), ("npu", 3));
    assert_eq!(d2.cluster, "npu");
    assert!(d2.level < 3);
}

#[test]
fn thermal_violation_happens_shortly_after_vr_arrival() {
    let trace = scenario::fig2_scenario().unwrap().run().unwrap();
    let violation = trace
        .decisions
        .iter()
        .find(|d| d.reason == DecisionReason::ThermalViolation)
        .expect("violation occurs");
    assert!(violation.at_secs > 15.0 && violation.at_secs < 24.0);
    // Temperature at the violation sample exceeds the limit.
    let soc = scenario::fig2_soc();
    let sample = trace
        .samples
        .iter()
        .find(|s| (s.at_secs - violation.at_secs).abs() < 1e-6)
        .expect("decision steps are sampled");
    assert!(sample.temp.as_celsius() > soc.thermal().limit.as_celsius());
}

#[test]
fn departures_free_resources_for_lower_priority_apps() {
    // DNN2 leaves at t = 10 s; DNN1 should reclaim the NPU at full width.
    let events = vec![
        ScenarioEvent {
            at_secs: 0.0,
            action: Action::Arrive(scenario::dnn1()),
        },
        ScenarioEvent {
            at_secs: 2.0,
            action: Action::Arrive(scenario::dnn2()),
        },
        ScenarioEvent {
            at_secs: 10.0,
            action: Action::Depart(names::DNN2.into()),
        },
    ];
    let sim = Simulator::new(
        scenario::fig2_soc(),
        events,
        SimConfig {
            duration: TimeSpan::from_secs(15.0),
            ..SimConfig::default()
        },
    )
    .unwrap();
    let trace = sim.run().unwrap();
    let mid = trace.app_at(5.0, names::DNN1).unwrap();
    assert_eq!(mid.cluster, "gpu", "displaced while dnn2 runs");
    let late = trace.app_at(12.0, names::DNN1).unwrap();
    assert_eq!(late.cluster, "npu", "reclaims the NPU after dnn2 departs");
    assert_eq!(late.level, 3);
}

#[test]
fn trace_is_deterministic() {
    let a = scenario::fig2_scenario().unwrap().run().unwrap();
    let b = scenario::fig2_scenario().unwrap().run().unwrap();
    assert_eq!(a.samples.len(), b.samples.len());
    assert_eq!(a.decisions.len(), b.decisions.len());
    for (x, y) in a.samples.iter().zip(&b.samples) {
        assert_eq!(x, y);
    }
}

#[test]
fn energy_accounting_is_consistent_with_mean_power() {
    let trace = scenario::fig2_scenario().unwrap().run().unwrap();
    let s = trace.summary();
    let recomputed = s.mean_power * s.duration;
    assert!(
        (recomputed.as_joules() - s.total_energy.as_joules()).abs() / s.total_energy.as_joules()
            < 1e-9
    );
}
