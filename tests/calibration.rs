//! Integration test: Table I reproduction through the public API.

use emlrt::platform::paper::TABLE_ONE;
use emlrt::platform::presets;
use emlrt::prelude::*;

#[test]
fn every_table_one_row_is_reproduced() {
    let socs = [presets::odroid_xu3(), presets::jetson_nano()];
    let w = presets::reference_workload();
    for row in &TABLE_ONE {
        let soc = socs.iter().find(|s| s.name() == row.platform).unwrap();
        let id = soc.find_cluster(row.cluster).unwrap();
        let spec = soc.cluster(id).unwrap();
        let p = soc
            .predict(
                Placement::whole_cluster(id, spec),
                Freq::from_mhz(row.freq_mhz),
                &w,
            )
            .unwrap();
        let t_err = (p.latency.as_millis() - row.time_ms).abs() / row.time_ms;
        let p_err = (p.power.as_milliwatts() - row.power_mw).abs() / row.power_mw;
        assert!(t_err < 0.02, "{}: latency {:.1}%", row.label, t_err * 100.0);
        assert!(p_err < 0.01, "{}: power {:.1}%", row.label, p_err * 100.0);
    }
}

#[test]
fn accuracy_is_platform_independent_in_our_model_too() {
    // Table I's platform-independent column: the same width level reports
    // the same accuracy regardless of where it runs.
    let profile = DnnProfile::reference("dnn");
    for soc in [
        presets::odroid_xu3(),
        presets::jetson_nano(),
        presets::flagship(),
    ] {
        let space = OpSpace::new(&soc, &profile, OpSpaceConfig::default()).unwrap();
        for op in space.iter() {
            let pt = space.evaluate(op).unwrap();
            let expected = profile.top1(op.level).unwrap();
            assert_eq!(pt.top1_percent, expected, "{} {:?}", soc.name(), op);
        }
    }
}

#[test]
fn jetson_gpu_dominates_jetson_cpu_as_in_table_one() {
    // Shape check: the GPU rows beat the CPU rows in both time and energy,
    // as the paper measured.
    let soc = presets::jetson_nano();
    let w = presets::reference_workload();
    let gpu = soc.find_cluster("gpu").unwrap();
    let cpu = soc.find_cluster("a57").unwrap();
    let pg = soc
        .predict(Placement::new(gpu, 1), Freq::from_mhz(921.6), &w)
        .unwrap();
    let pc = soc
        .predict(Placement::new(cpu, 4), Freq::from_mhz(1428.0), &w)
        .unwrap();
    assert!(pg.latency < pc.latency);
    assert!(pg.energy < pc.energy);
}

#[test]
fn xu3_a7_wins_energy_a15_wins_speed() {
    // The Table I shape that drives the whole case study: the A7 is the
    // energy-efficient cluster, the A15 the fast one.
    let soc = presets::odroid_xu3();
    let w = presets::reference_workload();
    let a15 = soc.find_cluster("a15").unwrap();
    let a7 = soc.find_cluster("a7").unwrap();
    let best_a15_time = soc
        .predict(Placement::new(a15, 4), Freq::from_mhz(1800.0), &w)
        .unwrap();
    let best_a7_energy = soc
        .predict(Placement::new(a7, 4), Freq::from_mhz(700.0), &w)
        .unwrap();
    // A15's fastest beats anything the A7 can do.
    let a7_fastest = soc
        .predict(Placement::new(a7, 4), Freq::from_mhz(1300.0), &w)
        .unwrap();
    assert!(best_a15_time.latency < a7_fastest.latency);
    // A7's most efficient beats anything the A15 can do.
    let mut best_a15_energy = f64::INFINITY;
    let spec = soc.cluster(a15).unwrap();
    for opp in spec.opps().iter() {
        let p = soc.predict(Placement::new(a15, 4), opp.freq(), &w).unwrap();
        best_a15_energy = best_a15_energy.min(p.energy.as_millijoules());
    }
    assert!(best_a7_energy.energy.as_millijoules() < best_a15_energy);
}

#[test]
fn workload_scaling_preserves_calibration_ratios() {
    // A workload of half the MACs takes half the time at the same power.
    let soc = presets::odroid_xu3();
    let a15 = soc.find_cluster("a15").unwrap();
    let w_full = presets::reference_workload();
    let w_half = w_full.scaled(0.5);
    let f = Freq::from_mhz(1000.0);
    let pf = soc.predict(Placement::new(a15, 4), f, &w_full).unwrap();
    let ph = soc.predict(Placement::new(a15, 4), f, &w_half).unwrap();
    assert!((ph.latency.as_secs() / pf.latency.as_secs() - 0.5).abs() < 1e-9);
    assert_eq!(ph.power, pf.power);
    assert!((ph.energy.as_joules() / pf.energy.as_joules() - 0.5).abs() < 1e-9);
}
