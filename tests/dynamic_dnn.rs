//! Integration test: train a dynamic DNN end to end (Fig 3 + Fig 4b
//! properties) and drive it through the profile/platform pipeline.
//!
//! Uses a miniature dataset/network so the test stays fast in debug builds;
//! the full-size run lives in the `fig3`/`fig4b` bench regenerators.

use emlrt::dnn::{DynamicDnn, Precision, WidthLevel};
use emlrt::nn::arch::{build_group_cnn, CnnConfig};
use emlrt::nn::dataset::{make_batch, DatasetConfig, SyntheticVision};
use emlrt::nn::metrics::evaluate;
use emlrt::nn::train::{train_incremental, TrainConfig};
use emlrt::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trained() -> (DynamicDnn, SyntheticVision) {
    let data = SyntheticVision::generate(DatasetConfig {
        classes: 4,
        height: 8,
        width: 8,
        train_per_class: 60,
        test_per_class: 25,
        modes_per_class: 2,
        ..DatasetConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(7);
    let mut net = build_group_cnn(
        CnnConfig {
            input: (3, 8, 8),
            classes: 4,
            groups: 4,
            base_width: 8,
        },
        &mut rng,
    )
    .unwrap();
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 16,
        lr: 0.08,
        ..TrainConfig::default()
    };
    let report = train_incremental(&mut net, data.train(), Some(data.test()), &cfg).unwrap();
    let dnn = DynamicDnn::from_trained("test-dnn", net, &report).unwrap();
    (dnn, data)
}

#[test]
fn training_yields_usable_accuracy_at_every_width() {
    let (mut dnn, data) = trained();
    // Chance level for 4 classes is 25%. The exact accuracies depend on
    // the vendored StdRng stream (weight init, shuffling, data
    // generation), so the per-width bound is deliberately loose — it
    // asserts "training worked", not a specific number an unrelated
    // rng-stream change could flip. The historical margin is wide: the
    // committed stream lands every width well above 0.55.
    let mut accs = Vec::new();
    for level in 0..4 {
        dnn.set_level(WidthLevel(level)).unwrap();
        let eval = evaluate(dnn.network_mut(), data.test(), 16).unwrap();
        assert!(
            eval.top1 > 0.35,
            "width {level}: top-1 {:.2} should clearly beat chance 0.25",
            eval.top1
        );
        accs.push(eval.top1);
    }
    // The mean across widths is far more stable than any single width:
    // pin the stronger claim there.
    let mean = accs.iter().sum::<f64>() / accs.len() as f64;
    assert!(mean > 0.45, "mean top-1 {mean:.2} across widths: {accs:?}");
}

#[test]
fn int8_precision_trades_little_accuracy_for_measured_latency() {
    // The executed data-precision knob: switching the trained model to
    // int8 must keep accuracy close to f32 at every width — the knob
    // trades *measured* accuracy, so the test measures it.
    let (mut dnn, data) = trained();
    for level in 0..4 {
        dnn.set_level(WidthLevel(level)).unwrap();
        dnn.set_precision(Precision::F32);
        let f32_top1 = evaluate(dnn.network_mut(), data.test(), 16).unwrap().top1;
        dnn.set_precision(Precision::Int8);
        let int8_top1 = evaluate(dnn.network_mut(), data.test(), 16).unwrap().top1;
        assert!(
            int8_top1 > f32_top1 - 0.05,
            "width {level}: int8 top-1 {int8_top1:.3} collapsed vs f32 {f32_top1:.3}"
        );
    }
}

#[test]
fn calibrated_chained_int8_serves_at_full_accuracy() {
    // The static-calibration serving workflow: calibrate on a few
    // training batches, freeze the scales, and serve int8 on the
    // *chained* pipeline (activations stay quantised across the whole
    // forward). Accuracy must hold at every width, and the frozen
    // scales must make inference reproducible across batch splits.
    let (mut dnn, data) = trained();
    let calibration: Vec<_> = (0..4)
        .map(|i| make_batch(data.train(), &((i * 16)..(i * 16 + 16)).collect::<Vec<_>>()).0)
        .collect();
    dnn.set_precision(Precision::Int8);
    let report = dnn.calibrate(&calibration).unwrap();
    assert_eq!(report.len(), 4, "conv1-3 + fc report frozen scales");
    assert!(report.iter().all(|r| r.scale > 0.0));
    for level in 0..4 {
        dnn.set_level(WidthLevel(level)).unwrap();
        dnn.set_precision(Precision::F32);
        let f32_top1 = evaluate(dnn.network_mut(), data.test(), 16).unwrap().top1;
        dnn.set_precision(Precision::Int8);
        let chained_top1 = evaluate(dnn.network_mut(), data.test(), 16).unwrap().top1;
        assert!(
            chained_top1 > f32_top1 - 0.05,
            "width {level}: chained int8 top-1 {chained_top1:.3} collapsed vs f32 {f32_top1:.3}"
        );
    }
    // Frozen scales: the same sample predicts identically alone and
    // inside a batch (dynamic scales cannot promise this).
    let (batch, _) = make_batch(data.test(), &(0..8).collect::<Vec<_>>());
    let batched = dnn.infer(&batch).unwrap();
    let (single, _) = make_batch(data.test(), &[0]);
    let alone = dnn.infer(&single).unwrap();
    assert_eq!(alone[0], batched[0], "frozen scales are batch-invariant");
}

#[test]
fn wider_is_never_much_worse_and_full_is_best_or_close() {
    let (mut dnn, data) = trained();
    let mut accs = Vec::new();
    for level in 0..4 {
        dnn.set_level(WidthLevel(level)).unwrap();
        accs.push(evaluate(dnn.network_mut(), data.test(), 16).unwrap().top1);
    }
    // The Fig 4(b) property on a small dataset, stated robustly: adding
    // groups never loses more than a couple of points, and the full model
    // is within noise of the best.
    for w in accs.windows(2) {
        assert!(
            w[1] >= w[0] - 0.05,
            "accuracy collapse across widths: {accs:?}"
        );
    }
    let best = accs.iter().copied().fold(0.0, f64::max);
    assert!(accs[3] >= best - 0.05, "full width far from best: {accs:?}");
}

#[test]
fn profile_cost_fractions_match_the_quarter_grid() {
    let (dnn, _) = trained();
    for (i, (_, spec)) in dnn.profile().levels().enumerate() {
        let expect = (i + 1) as f64 * 0.25;
        assert!(
            (spec.cost_fraction - expect).abs() < 0.01,
            "level {i}: {:.3} vs {expect}",
            spec.cost_fraction
        );
    }
}

#[test]
fn width_switching_is_free_of_retraining() {
    let (mut dnn, data) = trained();
    let (batch, _) = make_batch(data.test(), &(0..8).collect::<Vec<_>>());
    dnn.set_level(WidthLevel(1)).unwrap();
    let before = dnn.infer(&batch).unwrap();
    // Bounce through every level and come back.
    for l in [3, 0, 2, 1] {
        dnn.set_level(WidthLevel(l)).unwrap();
        let _ = dnn.infer(&batch).unwrap();
    }
    dnn.set_level(WidthLevel(1)).unwrap();
    let after = dnn.infer(&batch).unwrap();
    assert_eq!(
        before, after,
        "predictions must be bit-stable across switches"
    );
}

#[test]
fn trained_profile_drives_the_platform_pipeline() {
    // The live-trained profile (not the reference one) must flow through
    // the op-space machinery and produce a feasible decision.
    let (dnn, _) = trained();
    let soc = emlrt::platform::presets::odroid_xu3();
    let space = OpSpace::new(&soc, dnn.profile(), OpSpaceConfig::default()).unwrap();
    let req = Requirements::new().with_max_latency(TimeSpan::from_millis(500.0));
    let pt = ExhaustiveGovernor
        .decide(&space, &req, Objective::default())
        .unwrap()
        .expect("feasible");
    assert!(pt.latency.as_millis() <= 500.0);
    // Accuracy flows from the measured evaluation, not the paper table.
    let expected = dnn.profile().top1(pt.op.level).unwrap();
    assert_eq!(pt.top1_percent, expected);
}

#[test]
fn confidence_monitor_is_sane_at_all_widths() {
    let (mut dnn, data) = trained();
    let (batch, _) = make_batch(data.test(), &(0..16).collect::<Vec<_>>());
    for level in 0..4 {
        dnn.set_level(WidthLevel(level)).unwrap();
        let c = dnn.confidence(&batch).unwrap();
        assert!((0.25..=1.0).contains(&c), "width {level}: confidence {c}");
    }
}
