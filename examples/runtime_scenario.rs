//! The paper's Fig 2 runtime scenario: two DNNs, a VR/AR app and a thermal
//! violation on a flagship phone SoC.
//!
//! ```sh
//! cargo run --example runtime_scenario
//! ```

use emlrt::sim::scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = scenario::fig2_scenario()?;
    let trace = sim.run()?;

    println!("=== RTM decision log ===");
    print!("{}", trace.decision_log());

    println!("\n=== State at key times ===");
    println!(
        "{:>6} {:>8} {:>9} {:>10} {:>6} {:>7} {:>12} {:>5}",
        "t (s)", "app", "cluster", "freq (MHz)", "cores", "width", "latency (ms)", "met"
    );
    for t in [3.0, 10.0, 16.0, 22.0, 30.0, 38.0] {
        for app in [
            scenario::names::DNN1,
            scenario::names::DNN2,
            scenario::names::VRAR,
        ] {
            if let Some(a) = trace.app_at(t, app) {
                let width = if a.level == usize::MAX {
                    "-".to_string()
                } else {
                    format!("{}%", (a.level + 1) * 25)
                };
                println!(
                    "{:>6.1} {:>8} {:>9} {:>10.0} {:>6} {:>7} {:>12.1} {:>5}",
                    t, a.app, a.cluster, a.freq_mhz, a.cores, width, a.latency_ms, a.met
                );
            }
        }
    }

    let s = trace.summary();
    println!("\n=== Run summary ===");
    println!("duration:            {:.1} s", s.duration.as_secs());
    println!("total energy:        {:.1} J", s.total_energy.as_joules());
    println!("mean power:          {:.2} W", s.mean_power.as_watts());
    println!("peak temperature:    {:.1} C", s.peak_temp.as_celsius());
    println!("RTM decisions:       {}", s.decisions);
    println!("thermal violations:  {}", s.thermal_violations);
    println!("feasible fraction:   {:.1} %", s.feasible_fraction * 100.0);
    Ok(())
}
