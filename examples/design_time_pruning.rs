//! Design-time static pruning across platforms (the paper's Fig 1) and why
//! it breaks at runtime (§III-B).
//!
//! ```sh
//! cargo run --example design_time_pruning
//! ```

use emlrt::prelude::*;
use emlrt::rtm::baseline::{design_time_prune, dvfs_robustness, summarize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DnnProfile::reference("camera-dnn");
    let platforms = [
        emlrt::platform::presets::flagship(),
        emlrt::platform::presets::jetson_nano(),
        emlrt::platform::presets::odroid_xu3(),
    ];
    // Fig 1's three application classes.
    let requirements = [
        (
            "1 fps, very-high accuracy",
            Requirements::new().with_target_fps(1.0).with_min_top1(71.0),
        ),
        (
            "25 fps, high accuracy",
            Requirements::new()
                .with_target_fps(25.0)
                .with_min_top1(66.0),
        ),
        (
            "60 fps, medium accuracy",
            Requirements::new()
                .with_target_fps(60.0)
                .with_min_top1(60.0),
        ),
    ];

    println!("=== Fig 1: design-time compression per platform ===");
    println!(
        "{:<14} {:<28} {:>7} {:>10} {:>10}",
        "platform", "requirement", "width", "cluster", "freq"
    );
    for soc in &platforms {
        for (label, req) in &requirements {
            match design_time_prune(soc, &profile, req, OpSpaceConfig::default())? {
                Some(d) => println!(
                    "{:<14} {:<28} {:>6}% {:>10} {:>7.0}MHz",
                    soc.name(),
                    label,
                    (d.level.index() + 1) * 25,
                    d.cluster_name,
                    d.freq.as_mhz()
                ),
                None => println!("{:<14} {:<28} {:>7}", soc.name(), label, "none"),
            }
        }
    }

    // §III-B: the static design assumes a hardware setting that other
    // workloads can take away.
    println!("\n=== §III-B: robustness to DVFS perturbation (XU3, A15) ===");
    let soc = emlrt::platform::presets::odroid_xu3();
    let a15 = soc.find_cluster("a15").expect("preset cluster");
    let req = Requirements::new().with_max_latency(TimeSpan::from_millis(210.0));
    let design = design_time_prune(
        &soc,
        &profile,
        &req,
        OpSpaceConfig::default().with_clusters(vec![a15]),
    )?
    .expect("feasible at design time");
    println!(
        "design-time choice: {}% model @ {:.0} MHz",
        (design.level.index() + 1) * 25,
        design.freq.as_mhz()
    );
    let outcomes = dvfs_robustness(&soc, &profile, &req, &design)?;
    println!("{:>10} {:>14} {:>14}", "freq (MHz)", "static", "dynamic");
    for o in &outcomes {
        let spec = soc.cluster(a15)?;
        let freq = spec.opps().get(o.actual_opp).expect("valid OPP").freq();
        let dynamic = match &o.dynamic_point {
            Some(d) => format!("{}% ok", (d.op.level.index() + 1) * 25),
            None => "infeasible".to_string(),
        };
        println!(
            "{:>10.0} {:>14} {:>14}",
            freq.as_mhz(),
            if o.static_ok { "ok" } else { "VIOLATES" },
            dynamic
        );
    }
    let s = summarize(&outcomes);
    println!(
        "\nstatic violates at {}/{} frequencies; dynamic feasible at {}/{}",
        s.static_violations, s.total, s.dynamic_feasible, s.total
    );
    Ok(())
}
