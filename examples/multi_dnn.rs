//! Multi-DNN arbitration: how the RTM shares a flagship SoC between
//! concurrent DNNs of different priorities, and what a power cap does.
//!
//! ```sh
//! cargo run --example multi_dnn
//! ```

use emlrt::prelude::*;
use emlrt::sim::scenario::scaled_reference_profile;

fn dnn(name: &str, scale: f64, fps: f64, priority: u8) -> AppSpec {
    let profile = if (scale - 1.0).abs() < 1e-12 {
        DnnProfile::reference(name)
    } else {
        scaled_reference_profile(name, scale)
    };
    AppSpec::Dnn(DnnAppSpec {
        name: name.to_string(),
        profile,
        requirements: Requirements::new().with_target_fps(fps),
        priority,
        objective: None,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = emlrt::platform::presets::flagship();

    println!("=== Three concurrent DNNs, no power cap ===");
    let apps = [
        dnn("keyword-spotter", 0.2, 20.0, 3),
        dnn("face-detector", 1.0, 60.0, 2),
        dnn("scene-segmenter", 4.0, 15.0, 1),
    ];
    let rtm = Rtm::new(RtmConfig::default());
    let alloc = rtm.allocate(&soc, &apps)?;
    println!("{alloc}\n");

    println!("=== Same workload under a 4 W power cap ===");
    let rtm = Rtm::new(RtmConfig {
        power_cap: Some(Power::from_watts(4.0)),
        ..RtmConfig::default()
    });
    let alloc = rtm.allocate(&soc, &apps)?;
    println!("{alloc}\n");

    println!("=== Sweep: feasible accuracy vs power cap ===");
    println!(
        "{:>9} {:>22} {:>22} {:>22}",
        "cap (W)", "keyword-spotter", "face-detector", "scene-segmenter"
    );
    for cap_w in [2.0, 3.0, 4.0, 6.0, 8.0, 12.0] {
        let rtm = Rtm::new(RtmConfig {
            power_cap: Some(Power::from_watts(cap_w)),
            ..RtmConfig::default()
        });
        let alloc = rtm.allocate(&soc, &apps)?;
        let describe = |name: &str| -> String {
            match alloc.dnn(name) {
                Some(d) => format!(
                    "{}% on {}{}",
                    (d.point.op.level.index() + 1) * 25,
                    d.cluster_name,
                    if d.violations.is_empty() { "" } else { " (!)" }
                ),
                None => "unplaced".to_string(),
            }
        };
        println!(
            "{:>9.1} {:>22} {:>22} {:>22}",
            cap_w,
            describe("keyword-spotter"),
            describe("face-detector"),
            describe("scene-segmenter")
        );
    }
    println!("\n(!) = placed with requirement violations (best effort under the cap)");
    Ok(())
}
