//! Networked serving walkthrough: the executor behind a TCP front end,
//! one well-behaved client and one hostile client.
//!
//! The example binds an `eml-net` server over an executor with a
//! registered dynamic DNN, then plays both sides of the threat model:
//!
//! 1. a well-behaved client (`alice`) introduces itself, pings, and
//!    completes a stream of inferences over the wire;
//! 2. a hostile client (`mallory`) sends an oversize frame, protocol
//!    garbage and a flood — collecting a *typed* rejection for each —
//!    until its misbehaviour score crosses the ban threshold and its
//!    identity is shunned, reconnects included;
//! 3. the server shuts down gracefully: connections drain, the
//!    executor drains, and the accounting ledger balances.
//!
//! Run with: `cargo run --release --example server`

use std::time::Duration;

use emlrt::net::{
    frame, AdmissionConfig, ClientError, NetClient, NetConfig, NetServer, WireStatus,
};
use emlrt::prelude::*;
use emlrt::serve::testbed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // 1. An executor with one registered tiny DNN, behind the front
    // end. Admission is tuned aggressively so the demo bans quickly.
    let exec = Executor::new(ExecutorConfig::default());
    exec.register_dnn("cam", testbed::tiny_dnn(11), &Requirements::new())
        .unwrap();
    let mut server = NetServer::bind(
        NetConfig {
            frame_deadline: Duration::from_millis(200),
            admission: AdmissionConfig {
                bucket_capacity: 6.0,
                refill_per_sec: 20.0,
                ban_threshold: 8.0,
                score_decay_per_sec: 0.0,
                ban_base: Duration::from_secs(30),
                ..AdmissionConfig::default()
            },
            ..NetConfig::default()
        },
        exec,
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    println!("server listening on {addr}");

    // 2. Alice: hello, ping, a paced stream of real inferences.
    let mut alice = NetClient::connect(addr, Duration::from_secs(30)).unwrap();
    alice.hello("alice").unwrap();
    alice.ping().unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let sample: Vec<f32> = (0..3 * 8 * 8)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    for i in 0..8 {
        let done = alice
            .submit("cam", &sample)
            .expect("well-behaved traffic completes");
        println!(
            "alice #{i}: seq={} pred={} ({} logits)",
            done.seq,
            done.pred,
            done.logits.len()
        );
        // Pacing is what makes alice well-behaved: she stays inside her
        // token bucket's sustained rate.
        std::thread::sleep(Duration::from_millis(60));
    }

    // 3. Mallory: every abuse class earns a typed rejection and feeds
    // the misbehaviour score.
    let mut mallory = NetClient::connect(addr, Duration::from_secs(30)).unwrap();
    mallory.hello("mallory").unwrap();

    // Oversize frame: rejected from the 5-byte header, never buffered.
    let mut header = ((frame::DEFAULT_MAX_PAYLOAD as u32) + 1)
        .to_le_bytes()
        .to_vec();
    header.push(3);
    mallory.send_raw(&header).unwrap();
    let (status, msg) = mallory.read_status().unwrap();
    println!(
        "mallory oversize  -> {status:?}: {}",
        String::from_utf8_lossy(&msg)
    );

    // The oversize closed the connection; reconnect under the same
    // identity (the score travels with the identity, not the socket).
    let mut mallory = NetClient::connect(addr, Duration::from_secs(30)).unwrap();
    mallory.hello("mallory").unwrap();
    mallory.send_raw(&frame::encode(0xEE, b"garbage")).unwrap();
    let (status, _) = mallory.read_status().unwrap();
    println!("mallory garbage   -> {status:?}");

    // Flood: the token bucket pushes back, each refusal is scored, and
    // the accumulated score walks mallory into a ban.
    loop {
        match mallory.submit("cam", &sample) {
            Ok(_) => {}
            Err(ClientError::Status {
                status: WireStatus::RateLimited,
                ..
            }) => {
                println!("mallory flood     -> RateLimited (scored)");
            }
            Err(ClientError::Status {
                status: WireStatus::Banned,
                message,
            }) => {
                println!("mallory flood     -> Banned: {message}");
                break;
            }
            Err(ClientError::Closed) => {
                println!("mallory flood     -> connection closed");
                break;
            }
            Err(e) => panic!("untyped failure: {e:?}"),
        }
    }

    // Reconnecting does not help: the ban sticks to the identity.
    let mut mallory = NetClient::connect(addr, Duration::from_secs(30)).unwrap();
    match mallory.hello("mallory") {
        Err(ClientError::Status {
            status: WireStatus::Banned,
            message,
        }) => {
            println!("mallory reconnect -> Banned: {message}");
        }
        other => println!("mallory reconnect -> unexpected {other:?}"),
    }

    // 4. Alice is unaffected and still completing.
    let done = alice.submit("cam", &sample).expect("alice still served");
    println!("alice after the storm: seq={} pred={}", done.seq, done.pred);

    // 5. Graceful shutdown: join connections, drain the executor, and
    // show that the books balance.
    server.shutdown();
    let net = server.stats();
    let app = server.executor().stats("cam").unwrap();
    println!(
        "\nfront end: {} accepted, {} frames, {} submits, {} rate-limited, {} ban replies, {} panics",
        net.accepted, net.frames, net.exec_submitted, net.rate_limited, net.banned_replies,
        net.conn_panics
    );
    println!(
        "admission: {} violations, {} bans, {} tracked clients",
        server.admission().violations(),
        server.admission().bans(),
        server.admission().tracked_clients()
    );
    let attempts = net.exec_submitted + net.exec_rejected;
    println!(
        "ledger: {attempts} + {} storm == {} completed + {} errors + {} rejected + {} shed : {}",
        app.storm_injected,
        app.completed,
        app.errors,
        app.rejected,
        app.shed,
        attempts + app.storm_injected == app.completed + app.errors + app.rejected + app.shed
    );
}
