//! Incremental training of a dynamic DNN (the paper's Fig 3), live.
//!
//! Trains the group CNN on the synthetic vision dataset one group at a
//! time, then demonstrates runtime width switching without retraining.
//!
//! Prefer release mode — convolution in debug builds is slow:
//!
//! ```sh
//! cargo run --release --example incremental_training
//! ```

use emlrt::dnn::{DnnProfile, DynamicDnn, WidthLevel};
use emlrt::nn::arch::{build_group_cnn, CnnConfig};
use emlrt::nn::dataset::{make_batch, DatasetConfig, SyntheticVision};
use emlrt::nn::train::{train_incremental, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SyntheticVision::generate(DatasetConfig {
        classes: 10,
        train_per_class: 120,
        test_per_class: 40,
        ..DatasetConfig::default()
    });
    println!(
        "dataset: {} train / {} test images, {} classes",
        data.train().len(),
        data.test().len(),
        data.config().classes
    );

    let mut rng = StdRng::seed_from_u64(2020);
    let mut net = build_group_cnn(
        CnnConfig {
            input: (3, 16, 16),
            classes: 10,
            groups: 4,
            base_width: 16,
        },
        &mut rng,
    )?;
    println!(
        "network: {} parameters (single model)\n",
        net.cost()?.params_total
    );

    // Fig 3(b): train group k while groups <k stay frozen, >k ignored.
    let cfg = TrainConfig {
        epochs: 4,
        batch_size: 32,
        lr: 0.06,
        ..TrainConfig::default()
    };
    let report = train_incremental(&mut net, data.train(), Some(data.test()), &cfg)?;

    println!(
        "{:>7} {:>12} {:>12} {:>12}",
        "width", "top-1 (%)", "MACs frac", "params"
    );
    let full_macs = net.cost_at(4)?.macs;
    for step in &report.steps {
        let eval = step.eval.as_ref().expect("eval requested");
        let cost = net.cost_at(step.active_groups)?;
        println!(
            "{:>6}% {:>12.1} {:>12.2} {:>12}",
            step.active_groups * 25,
            eval.top1 * 100.0,
            cost.macs / full_macs,
            cost.params
        );
    }

    // Fig 3(c): switch widths at runtime — no retraining, bit-identical
    // narrow outputs.
    let mut dnn = DynamicDnn::from_trained("demo", net, &report)?;
    let (batch, _) = make_batch(data.test(), &[0, 1, 2, 3]);
    dnn.set_level(WidthLevel(0))?;
    let narrow_before = dnn.infer(&batch)?;
    dnn.set_level(WidthLevel(3))?;
    let _ = dnn.infer(&batch)?;
    dnn.set_level(WidthLevel(0))?;
    let narrow_after = dnn.infer(&batch)?;
    assert_eq!(narrow_before, narrow_after);
    println!(
        "\nswitched widths {} times; 25% predictions identical before/after: OK",
        dnn.switch_count()
    );

    let profile: &DnnProfile = dnn.profile();
    println!(
        "single dynamic model: {:.0} KiB vs static baseline ({} separate models): {:.0} KiB",
        profile.model_bytes() / 1024.0,
        profile.level_count(),
        profile.static_baseline_bytes() / 1024.0
    );
    Ok(())
}
