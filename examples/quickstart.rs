//! Quickstart: the paper's §IV worked example, end to end.
//!
//! Builds the Odroid XU3 platform model, the reference dynamic-DNN profile,
//! and asks the RTM for the best operating point under the paper's two
//! budgets. Run with:
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use emlrt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The board of the paper's case study: Samsung Exynos 5422 (4×A15 +
    // 4×A7), calibrated against the published Table I measurements.
    let soc = emlrt::platform::presets::odroid_xu3();

    // The paper's dynamic DNN: 25/50/75/100% width levels with the
    // published CIFAR-10 accuracies (56 / 62.7 / 68.8 / 71.2 %).
    let profile = DnnProfile::reference("camera-dnn");

    // The §IV space: CPU clusters only (A15 × 17 DVFS levels, A7 × 12).
    let cpus = vec![
        soc.find_cluster("a15").expect("XU3 has an A15 cluster"),
        soc.find_cluster("a7").expect("XU3 has an A7 cluster"),
    ];
    let space = OpSpace::new(&soc, &profile, OpSpaceConfig::default().with_clusters(cpus))?;
    println!(
        "operating-point space: {} points ({} widths x 29 DVFS/mapping settings)\n",
        space.len(),
        profile.level_count()
    );

    for (label, time_ms, energy_mj) in [
        ("budget 1 (paper: 100% model on A7 @ 900 MHz)", 400.0, 100.0),
        ("budget 2 (paper: 75% model on A15 @ 1 GHz)", 200.0, 150.0),
    ] {
        let req = Requirements::new()
            .with_max_latency(TimeSpan::from_millis(time_ms))
            .with_max_energy(Energy::from_millijoules(energy_mj));
        let best = ExhaustiveGovernor
            .decide(&space, &req, Objective::MaxAccuracyThenMinEnergy)?
            .expect("both paper budgets are feasible");
        let cluster = soc.cluster(best.op.cluster)?;
        let freq = cluster
            .opps()
            .get(best.op.opp_index)
            .expect("valid OPP")
            .freq();
        println!("{label}");
        println!(
            "  -> {} model on {} @ {:.0} MHz x{} cores",
            ["25%", "50%", "75%", "100%"][best.op.level.index()],
            cluster.name(),
            freq.as_mhz(),
            best.op.cores
        );
        println!(
            "     predicted: {:.1} ms, {:.1} mJ, {:.0} mW, top-1 {:.1} %\n",
            best.latency.as_millis(),
            best.energy.as_millijoules(),
            best.power.as_milliwatts(),
            best.top1_percent
        );
    }
    Ok(())
}
