//! Multi-tenant serving walkthrough: two dynamic-DNN applications and a
//! rigid app, allocated by the RTM and **executed** on the real kernels.
//!
//! The example registers the apps with a serving executor, actuates an
//! allocation, pumps a burst of requests through each DNN's bounded
//! queue (micro-batched onto the batch>1 forward path), and prints
//! measured P50/P99 latency against each app's requirement. It then
//! replays an arrival scenario through the simulator in *executed mode*
//! so the trace reports measured, not analytic, latencies.
//!
//! Run with: `cargo run --release --example serving`

use emlrt::prelude::*;
use emlrt::serve::testbed;
use emlrt::serve::ExecutedReplay;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // 1. Two real dynamic DNNs (seeded tiny CNNs profiled by their own
    // cost model) and one rigid GPU renderer.
    let cam = testbed::tiny_dnn(1);
    let det = testbed::tiny_dnn(2);
    let cam_req = Requirements::new().with_max_latency(TimeSpan::from_millis(5.0));
    let det_req = Requirements::new().with_target_fps(60.0);

    let exec = Executor::new(ExecutorConfig {
        queue_capacity: 64,
        batch_cap: 8,
        ..Default::default()
    });
    let specs = vec![
        AppSpec::Dnn(DnnAppSpec {
            name: "cam".into(),
            profile: cam.profile().clone(),
            requirements: cam_req.clone(),
            priority: 1,
            objective: None,
        }),
        AppSpec::Dnn(DnnAppSpec {
            name: "det".into(),
            profile: det.profile().clone(),
            requirements: det_req.clone(),
            priority: 2,
            objective: None,
        }),
        AppSpec::Rigid(RigidAppSpec {
            name: "vr".into(),
            preferred: vec![CoreKind::Gpu],
            utilization: 0.9,
            priority: 3,
        }),
    ];
    exec.register_dnn("cam", cam, &cam_req).unwrap();
    exec.register_dnn("det", det, &det_req).unwrap();
    exec.register_rigid("vr").unwrap();

    // 2. Allocate on the flagship SoC and actuate: width knobs land on
    // the live models, band caps reflect allocated cores.
    let soc = emlrt::platform::presets::flagship();
    let mut ctl = ServeController::new(
        Rtm::new(RtmConfig::default()),
        soc.clone(),
        specs.clone(),
        ControllerConfig::default(),
    );
    let alloc = ctl.allocate_and_apply(&exec).unwrap();
    println!("allocation:\n{alloc}\n");

    // 3. Pump a request burst through both DNNs and let the
    // micro-batcher coalesce; every request completes through its
    // ticket (queue overflow would be a typed error, not a block).
    let mut rng = StdRng::seed_from_u64(7);
    let mut tickets: std::collections::VecDeque<emlrt::serve::Ticket> =
        std::collections::VecDeque::new();
    let mut shed = 0u32;
    for _ in 0..150 {
        let sample: Vec<f32> = (0..3 * 8 * 8)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        for app in ["cam", "det"] {
            match exec.submit(app, &sample) {
                Ok(t) => tickets.push_back(t),
                Err(ServeError::QueueFull { .. }) => {
                    // Typed back-pressure: reap the oldest completion,
                    // then retry once.
                    shed += 1;
                    if let Some(t) = tickets.pop_front() {
                        t.wait().unwrap();
                    }
                    if let Ok(t) = exec.submit(app, &sample) {
                        tickets.push_back(t);
                    }
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
    }
    for t in &tickets {
        t.wait().unwrap();
    }
    exec.drain();
    println!("back-pressure events: {shed}\n");

    // 4. Measured tail latency vs requirement, per app.
    for (app, req) in [("cam", &cam_req), ("det", &det_req)] {
        let s = exec.stats(app).unwrap();
        let budget = req
            .max_latency()
            .map_or("-".to_string(), |d| format!("{:.0} us", d.as_micros()));
        println!(
            "{app}: {} done, P50 {:.0} us, P99 {:.0} us (budget {budget}), \
             mean batch {:.1}, misses {:.1}%",
            s.completed,
            s.p50.map_or(0.0, |t| t.as_micros()),
            s.p99.map_or(0.0, |t| t.as_micros()),
            s.mean_batch(),
            100.0 * s.miss_fraction(),
        );
    }

    // 5. One control epoch: measured latencies feed the model
    // correction; sustained misses would re-allocate with the
    // corrected model.
    let outcome = ctl.control_epoch(&exec).unwrap();
    println!(
        "\ncontrol epoch: observed {} apps, reallocated: {}",
        outcome.observed, outcome.reallocated
    );

    // 6. Executed-mode scenario replay: arrivals re-allocate live, and
    // the trace's per-app latencies are measured through the executor.
    let events = vec![
        emlrt::sim::simulator::ScenarioEvent {
            at_secs: 0.0,
            action: emlrt::sim::simulator::Action::Arrive(specs[0].clone()),
        },
        emlrt::sim::simulator::ScenarioEvent {
            at_secs: 1.0,
            action: emlrt::sim::simulator::Action::Arrive(specs[1].clone()),
        },
        emlrt::sim::simulator::ScenarioEvent {
            at_secs: 2.0,
            action: emlrt::sim::simulator::Action::Arrive(specs[2].clone()),
        },
    ];
    let sim = Simulator::new(
        soc,
        events,
        SimConfig {
            duration: TimeSpan::from_secs(4.0),
            ..SimConfig::default()
        },
    )
    .unwrap();
    let probe: Vec<f32> = (0..3 * 8 * 8)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let mut replay = ExecutedReplay::new(&exec)
        .with_probe("cam", probe.clone())
        .with_probe("det", probe);
    let trace = sim.run_executed(&mut replay).unwrap();
    let summary = trace.summary();
    println!(
        "\nexecuted replay: {} decisions, measured feasible fraction {:.2}",
        summary.decisions, summary.feasible_fraction
    );
    if let Some(s) = trace.app_at(3.5, "cam") {
        println!(
            "cam at t=3.5s: {:.0} us measured on `{}`",
            s.latency_ms * 1e3,
            s.cluster
        );
    }

    // 7. Fault tolerance: the same executor surface under a
    // deterministic fault schedule. A seeded `FaultPlan` panics one
    // forward pass, injects a 50 ms interference spike and floods the
    // queue with a synthetic storm; every outcome stays typed (no
    // ticket is ever lost), the supervisor keeps the serving thread
    // alive, and a `PressurePolicy` steps the width/precision knobs
    // down under the induced pressure and restores them once it clears.
    use emlrt::serve::PressureAction;
    let plan = FaultPlan::new()
        .with_fault("edge", 8, FaultKind::PanicForward)
        .with_fault(
            "edge",
            16,
            FaultKind::LatencySpike(TimeSpan::from_millis(50.0)),
        )
        .with_fault("edge", 24, FaultKind::QueueStorm(4));
    let chaos_exec = Executor::new(ExecutorConfig {
        queue_capacity: 32,
        batch_cap: 4,
        fault_plan: Some(std::sync::Arc::new(plan)),
        ..Default::default()
    });
    let edge_req = Requirements::new().with_max_latency(TimeSpan::from_millis(20.0));
    chaos_exec
        .register_dnn("edge", testbed::tiny_dnn(3), &edge_req)
        .unwrap();
    let mut policy = PressurePolicy::new(PressureConfig::default());
    let (mut done, mut failed, mut shed_late) = (0u32, 0u32, 0u32);
    for burst in 0..8 {
        let tickets: Vec<emlrt::serve::Ticket> = (0..4)
            .map(|_| {
                let sample: Vec<f32> = (0..3 * 8 * 8)
                    .map(|_| rng.gen_range(-1.0f32..1.0))
                    .collect();
                chaos_exec.submit("edge", &sample).unwrap()
            })
            .collect();
        for t in tickets {
            match t.wait() {
                Ok(_) => done += 1,
                Err(ServeError::Inference { .. }) => failed += 1,
                Err(ServeError::DeadlineExpired { .. }) => shed_late += 1,
                Err(e) => panic!("untyped outcome: {e}"),
            }
        }
        // Between bursts the degradation ladder inspects the app: under
        // pressure it steps precision/width down, after recovery it
        // climbs back.
        match policy.tick(&chaos_exec, "edge") {
            Some(PressureAction::Degraded { step, .. }) => {
                println!("burst {burst}: ladder stepped down ({step:?})");
            }
            Some(PressureAction::Restored { step, .. }) => {
                println!("burst {burst}: ladder restored ({step:?})");
            }
            None => {}
        }
    }
    chaos_exec.drain();
    let s = chaos_exec.stats("edge").unwrap();
    println!(
        "\nchaos run: {done} ok, {failed} typed failures, {shed_late} shed; \
         executor counted {} completed (+{} storm riders), {} errors, {} shed, \
         {} restarts — every request accounted for",
        s.completed, s.storm_injected, s.errors, s.shed, s.restarts
    );
}
