//! Dump the paper's Fig 4(a) operating-point space as CSV.
//!
//! Sweeps the four dynamic-DNN widths across the A15 (17 DVFS levels) and
//! A7 (12 levels) clusters of the Odroid XU3 and prints
//! `(cluster, width, freq, time, energy)` rows suitable for plotting.
//!
//! ```sh
//! cargo run --example operating_points > fig4a.csv
//! ```

use emlrt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = emlrt::platform::presets::odroid_xu3();
    let profile = DnnProfile::reference("camera-dnn");
    let cpus = vec![
        soc.find_cluster("a15").expect("preset cluster"),
        soc.find_cluster("a7").expect("preset cluster"),
    ];
    let space = OpSpace::new(&soc, &profile, OpSpaceConfig::default().with_clusters(cpus))?;

    println!("cluster,width_percent,freq_mhz,time_ms,energy_mj,power_mw,top1_percent");
    for op in space.iter() {
        let pt = space.evaluate(op)?;
        let cluster = soc.cluster(op.cluster)?;
        let freq = cluster.opps().get(op.opp_index).expect("valid OPP").freq();
        println!(
            "{},{},{:.0},{:.2},{:.2},{:.0},{:.1}",
            cluster.name(),
            (op.level.index() + 1) * 25,
            freq.as_mhz(),
            pt.latency.as_millis(),
            pt.energy.as_millijoules(),
            pt.power.as_milliwatts(),
            pt.top1_percent
        );
    }
    Ok(())
}
