//! Minimal offline stand-in for the `rayon` crate.
//!
//! Provides the structured-parallelism subset this workspace uses —
//! [`scope`] with [`Scope::spawn`], [`join`] and
//! [`current_num_threads`] — implemented on a **persistent worker
//! pool**, like the real crate (minus work stealing): a fixed set of
//! threads is spawned lazily on first use and parked on a condvar
//! between parallel regions, so a region pays a queue push and a wakeup
//! instead of an OS thread spawn. Callers are expected to chunk work so
//! the number of spawns per scope stays near [`current_num_threads`];
//! the `eml_nn` worker helpers do exactly that. Swap for the real crate
//! when a registry is available; the call sites need no change.
//!
//! # Semantics
//!
//! - [`scope`] returns only after every task spawned into it (including
//!   tasks spawned by tasks) has finished, so tasks may borrow from the
//!   caller's stack, exactly like `rayon::scope`.
//! - A panic inside a spawned task is captured and re-thrown from
//!   [`scope`] on the calling thread (first panic wins); remaining
//!   tasks of the scope still run to completion first.
//! - A [`scope`] entered *from a pool worker* (a nested parallel
//!   region) runs its tasks inline on that worker. This keeps the
//!   executor deadlock-free without work stealing: workers never block
//!   waiting on other workers.
//!
//! # Safety
//!
//! This crate contains one `unsafe` block: spawned tasks are boxed and
//! their `'scope` lifetime is erased to `'static` so the long-lived
//! workers can hold them. That is sound because [`scope`] does not
//! return until the pool has finished (and dropped) every task of the
//! scope — the borrows a task captures are live for as long as the task
//! exists. This is the standard scoped-pool contract (`rayon`,
//! `crossbeam::scope`); the latch logic enforcing it lives entirely in
//! [`ScopeState`].

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread;

/// A lifetime-erased task, executable by any worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The shared state of the worker pool: a FIFO injector queue and the
/// condvar workers park on while it is empty.
struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is pushed.
    available: Condvar,
}

struct Pool {
    shared: Arc<PoolShared>,
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// True on pool worker threads; nested scopes detect this and run
    /// inline (see module docs).
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Locks a mutex, ignoring poisoning: the state a pool mutex guards is
/// only ever mutated under the lock by panic-free code (task panics are
/// caught before the latch is touched).
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The worker count the pool has (or will have once spawned):
/// `RAYON_NUM_THREADS` when set to a positive integer (the real
/// crate's env knob — CI uses it to pin perf runs to one worker so
/// measurements compare across hosts with different core counts),
/// otherwise the machine's available parallelism. Cached —
/// `available_parallelism` re-reads cgroup limits on Linux, which is
/// far too slow for a per-GEMM-call query.
fn worker_target() -> usize {
    static TARGET: OnceLock<usize> = OnceLock::new();
    *TARGET.get_or_init(|| {
        if let Some(n) = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let workers = worker_target();
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("eml-pool-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn pool worker");
        }
        Pool { shared, workers }
    })
}

fn worker_loop(shared: &PoolShared) {
    IS_WORKER.with(|w| w.set(true));
    loop {
        let job = {
            let mut queue = lock_ignore_poison(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // The job wrapper catches panics and reports them through its
        // scope's latch; the worker itself never unwinds.
        job();
    }
}

/// Number of worker threads a parallel region should target — the size
/// of the persistent pool (the machine's available parallelism).
/// Reading the count does not spawn the pool; workers start on the
/// first [`Scope::spawn`], so purely serial callers never pay for
/// parked threads.
pub fn current_num_threads() -> usize {
    POOL.get().map_or_else(worker_target, |p| p.workers)
}

/// The completion latch of one [`scope`]: counts outstanding tasks and
/// records the first panic payload.
#[derive(Default)]
struct ScopeState {
    sync: Mutex<ScopeSync>,
    /// Signalled when the outstanding-task count reaches zero.
    done: Condvar,
}

#[derive(Default)]
struct ScopeSync {
    pending: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl ScopeState {
    fn task_spawned(&self) {
        lock_ignore_poison(&self.sync).pending += 1;
    }

    fn task_finished(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut sync = lock_ignore_poison(&self.sync);
        sync.pending -= 1;
        if sync.panic.is_none() {
            sync.panic = panic;
        }
        if sync.pending == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every task has finished; returns the first captured
    /// panic, if any.
    fn wait(&self) -> Option<Box<dyn Any + Send>> {
        let mut sync = lock_ignore_poison(&self.sync);
        while sync.pending > 0 {
            sync = self
                .done
                .wait(sync)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        sync.panic.take()
    }
}

/// A scope for spawning borrowed work, mirroring `rayon::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    /// `None` when running inline on a pool worker (nested region).
    state: Option<Arc<ScopeState>>,
    /// Invariant over both lifetimes, as in `rayon`.
    _marker: PhantomData<&'scope mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope; the scope
    /// joins it (and any task it transitively spawns) before returning.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let Some(state) = &self.state else {
            // Inline (nested-on-worker) scope: run now, on this thread.
            f(self);
            return;
        };
        let state = Arc::clone(state);
        state.task_spawned();
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let panic = {
                let nested = Scope {
                    state: Some(Arc::clone(&state)),
                    _marker: PhantomData,
                };
                catch_unwind(AssertUnwindSafe(|| f(&nested))).err()
                // `f` and `nested` are dropped here, before the latch is
                // released — no borrow survives past `scope`'s return.
            };
            state.task_finished(panic);
        });
        // SAFETY: the worker pool outlives the process, but `scope`
        // blocks on `ScopeState::wait` until this job has run and been
        // dropped (the `pending` count it decrements was incremented
        // above, before the push). Everything the job borrows therefore
        // strictly outlives the job, which is the guarantee `'scope`
        // encoded; erasing the lifetime does not extend any actual use.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        let shared = &pool().shared;
        lock_ignore_poison(&shared.queue).push_back(job);
        shared.available.notify_one();
    }
}

/// Runs `f` with a [`Scope`]; returns once every spawned task finished.
/// Tasks run on the persistent worker pool. Panics from tasks are
/// re-thrown here after the whole scope has completed.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    if IS_WORKER.with(|w| w.get()) {
        // Nested region on a worker: run inline (see module docs).
        let inline = Scope {
            state: None,
            _marker: PhantomData,
        };
        return f(&inline);
    }
    let state = Arc::new(ScopeState::default());
    let scope_ref = Scope {
        state: Some(Arc::clone(&state)),
        _marker: PhantomData,
    };
    // Run the body, then *always* wait for spawned tasks — even if the
    // body panicked — so borrows stay valid for as long as tasks exist.
    let body = catch_unwind(AssertUnwindSafe(|| f(&scope_ref)));
    let task_panic = state.wait();
    match body {
        Err(panic) => resume_unwind(panic),
        Ok(result) => {
            if let Some(panic) = task_panic {
                resume_unwind(panic);
            }
            result
        }
    }
}

/// Runs two closures, potentially in parallel, returning both results.
///
/// Like the real crate, `oper_a` runs on the calling thread while
/// `oper_b` is offered to the pool; a panic in either is re-thrown
/// here with its original payload.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = scope(|s| {
        let rb = &mut rb;
        s.spawn(move |_| *rb = Some(oper_b()));
        oper_a()
    });
    (ra, rb.expect("join task ran to completion"))
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn scope_joins_all_spawns() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn scope_tasks_can_borrow_disjoint_chunks() {
        let mut data = vec![0u32; 64];
        super::scope(|s| {
            for chunk in data.chunks_mut(16) {
                s.spawn(move |_| {
                    for v in chunk {
                        *v += 1;
                    }
                });
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_propagates_original_panic_payload() {
        let result = std::panic::catch_unwind(|| {
            super::join(|| 1, || -> i32 { panic!("join boom") });
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "join boom");
    }

    #[test]
    fn num_threads_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn zero_work_scope_returns_immediately() {
        // A region that spawns nothing must not touch the pool at all.
        let out = super::scope(|_| 41 + 1);
        assert_eq!(out, 42);
    }

    #[test]
    fn pool_is_reused_across_many_regions() {
        // 64 regions × several tasks: a spawn-per-task executor would
        // burn through hundreds of distinct OS threads; the pool must
        // keep the set of executing threads within its fixed size.
        let seen = Mutex::new(HashSet::new());
        for _ in 0..64 {
            super::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|_| {
                        seen.lock()
                            .expect("no poisoning")
                            .insert(std::thread::current().id());
                    });
                }
            });
        }
        let distinct = seen.lock().expect("no poisoning").len();
        assert!(
            distinct <= super::current_num_threads(),
            "{distinct} distinct threads for a {}-worker pool",
            super::current_num_threads()
        );
    }

    #[test]
    fn pool_size_respects_worker_count_bound() {
        // The pool is sized to the machine's available parallelism and
        // never grows, however many tasks are queued at once.
        let bound = super::current_num_threads();
        let seen = Mutex::new(HashSet::new());
        super::scope(|s| {
            for _ in 0..8 * bound {
                s.spawn(|_| {
                    seen.lock()
                        .expect("no poisoning")
                        .insert(std::thread::current().id());
                });
            }
        });
        let distinct = seen.lock().expect("no poisoning").len();
        assert!(distinct >= 1);
        assert!(
            distinct <= bound,
            "{distinct} executing threads exceed the {bound}-worker bound"
        );
    }

    #[test]
    fn task_panic_propagates_to_scope_caller() {
        let result = std::panic::catch_unwind(|| {
            super::scope(|s| {
                s.spawn(|_| panic!("task boom"));
            });
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "task boom");
    }

    #[test]
    fn sibling_tasks_still_run_when_one_panics() {
        // The scope reports the panic only after quiescing: work
        // already spawned is not abandoned mid-flight.
        let done = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(|| {
            super::scope(|s| {
                s.spawn(|_| panic!("first"));
                for _ in 0..4 {
                    s.spawn(|_| {
                        done.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        });
        assert!(result.is_err());
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn pool_survives_a_panicked_region() {
        let _ = std::panic::catch_unwind(|| {
            super::scope(|s| s.spawn(|_| panic!("poison attempt")));
        });
        // The same workers must still execute later regions.
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_scopes_complete_without_deadlock() {
        // A task that opens its own scope runs it inline on the worker;
        // with as few as one worker this must still terminate.
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..2 {
                s.spawn(|_| {
                    super::scope(|inner| {
                        for _ in 0..3 {
                            inner.spawn(|_| {
                                counter.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn tasks_can_spawn_siblings_into_the_same_scope() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|s| {
                counter.fetch_add(1, Ordering::SeqCst);
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }
}
