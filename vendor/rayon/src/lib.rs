//! Minimal offline stand-in for the `rayon` crate.
//!
//! Provides the structured-parallelism subset this workspace uses —
//! [`scope`] with [`Scope::spawn`], [`join`] and
//! [`current_num_threads`] — implemented on `std::thread::scope` (one
//! OS thread per spawn, no pool). Callers are expected to chunk work so
//! the number of spawns per scope stays near [`current_num_threads`];
//! the `eml_nn` worker helpers do exactly that. Swap for the real crate
//! when a registry is available; the call sites need no change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::thread;

/// Number of worker threads a parallel region should target (the
/// machine's available parallelism).
pub fn current_num_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A scope for spawning borrowed work, mirroring `rayon::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope; the scope
    /// joins it before returning.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            let nested = Scope { inner };
            f(&nested);
        });
    }
}

/// Runs `f` with a [`Scope`]; returns once every spawned task finished.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    thread::scope(|s| f(&Scope { inner: s }))
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|s| {
        let b = s.spawn(oper_b);
        let ra = oper_a();
        let rb = b.join().expect("rayon::join task panicked");
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_spawns() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn scope_tasks_can_borrow_disjoint_chunks() {
        let mut data = vec![0u32; 64];
        super::scope(|s| {
            for chunk in data.chunks_mut(16) {
                s.spawn(move |_| {
                    for v in chunk {
                        *v += 1;
                    }
                });
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn num_threads_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
