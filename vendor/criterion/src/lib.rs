//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset this workspace's `harness = false` benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`BatchSize`], the
//! `criterion_group!`/`criterion_main!` macros and the `--test` CLI
//! smoke mode (`cargo bench -- --test` runs every benchmark exactly
//! once without measuring). Reports the median and spread of per-sample
//! mean iteration times on stdout; no HTML reports, no statistics
//! beyond that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost (accepted for API
/// compatibility; this implementation always re-runs setup per sample
/// batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Drives the timing loop of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    target_sample_time: Duration,
    /// Mean nanoseconds per iteration for each collected sample.
    sample_means_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `routine` repeatedly and records per-iteration times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Calibrate: how many iterations fit the per-sample budget?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let iters =
            (self.target_sample_time.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.sample_means_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    /// Measures `routine` on fresh inputs produced by `setup` (setup
    /// time is excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        for _ in 0..self.samples {
            const BATCH: usize = 8;
            let inputs: Vec<I> = (0..BATCH).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            self.sample_means_ns
                .push(elapsed.as_nanos() as f64 / BATCH as f64);
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    samples: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            test_mode: false,
            filter: None,
            samples: 30,
            target_sample_time: Duration::from_millis(5),
        }
    }
}

impl Criterion {
    /// Builds a harness configured from the process CLI arguments
    /// (`--test` enables smoke mode; a bare string filters by name).
    pub fn configure_from_args() -> Self {
        let mut c = Self::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                "--bench" => {}
                s if !s.starts_with('-') => c.filter = Some(s.to_string()),
                _ => {}
            }
        }
        c
    }

    fn run(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            samples: self.samples,
            target_sample_time: self.target_sample_time,
            sample_means_ns: Vec::new(),
        };
        f(&mut b);
        if self.test_mode {
            println!("{name}: test passed");
            return;
        }
        let mut means = b.sample_means_ns;
        if means.is_empty() {
            println!("{name}: no samples collected");
            return;
        }
        means.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = means[means.len() / 2];
        let lo = means[means.len() / 20];
        let hi = means[means.len() - 1 - means.len() / 20];
        println!(
            "{name}: time [{:>12} {:>12} {:>12}]",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi)
        );
    }

    /// Registers and runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks (`group/function` naming).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Registers and runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.criterion.run(&full, &mut f);
        self
    }

    /// Ends the group (formatting no-op, kept for API compatibility).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundles benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` for a bench target, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::configure_from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine_in_test_mode() {
        let mut calls = 0usize;
        let mut b = Bencher {
            test_mode: true,
            samples: 5,
            target_sample_time: Duration::from_millis(1),
            sample_means_ns: Vec::new(),
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1, "test mode runs exactly once");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            test_mode: false,
            samples: 3,
            target_sample_time: Duration::from_micros(50),
            sample_means_ns: Vec::new(),
        };
        b.iter(|| black_box(1 + 1));
        assert_eq!(b.sample_means_ns.len(), 3);
        assert!(b.sample_means_ns.iter().all(|&m| m > 0.0));
    }

    #[test]
    fn group_names_are_prefixed() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("f", |b| {
            b.iter(|| ran = true);
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("match".into()),
            ..Criterion::default()
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("match_this", |b| b.iter(|| ran = true));
        assert!(ran);
    }
}
