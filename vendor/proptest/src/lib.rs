//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the property-testing subset this workspace uses: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`], range/tuple strategies,
//! [`Strategy::prop_map`], [`collection::vec`] and [`bool::ANY`].
//!
//! Differences from the real crate: inputs are sampled from a
//! deterministic RNG (one fixed stream per case index, so failures
//! reproduce run-to-run) and there is **no shrinking** — a failing case
//! reports the case index and message only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic RNG driving strategy sampling.

    /// A small xorshift* generator; one instance per test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for the given case index (deterministic).
        pub fn deterministic(case: u64) -> Self {
            // Golden-ratio offset keeps nearby case indices decorrelated.
            Self {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

/// Per-test configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Generates values of `Self::Value` for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start as f64
                    + rng.unit_f64() * (self.end as f64 - self.start as f64);
                v as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                (start as f64 + rng.unit_f64() * (end as f64 - start as f64)) as $t
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod bool {
    //! Boolean strategies.
    use super::{Strategy, TestRng};

    /// Strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s of `elem` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    /// Strategy type returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::sample(&self.size.clone(), rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Skips the current case when its precondition does not hold.
///
/// The real crate rejects the case and draws a replacement; this
/// stand-in simply ends the case successfully, which preserves
/// soundness (no false failures) at the cost of running slightly fewer
/// effective cases.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current
/// case (not panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` ({:?} != {:?})",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "{} ({:?} != {:?})",
                ::std::format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Expands `name in strategy` argument lists into sampled `let`
/// bindings (implementation detail of [`proptest!`]).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; mut $arg:ident in $strat:expr) => {
        let mut $arg = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; mut $arg:ident in $strat:expr, $($rest:tt)*) => {
        let mut $arg = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Generates `#[test]` functions that run their body over many sampled
/// inputs, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { <$crate::ProptestConfig as ::std::default::Default>::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($args:tt)* ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..u64::from(cfg.cases) {
                let mut __proptest_rng = $crate::test_runner::TestRng::deterministic(case);
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $crate::__proptest_bind!(__proptest_rng; $($args)*);
                    let _ = &mut __proptest_rng;
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    ::std::panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        ::std::stringify!($name),
                        case,
                        cfg.cases,
                        msg
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_range() {
        let mut rng = crate::test_runner::TestRng::deterministic(5);
        for _ in 0..500 {
            let v = Strategy::sample(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::sample(&(-1.0f32..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
            let i = Strategy::sample(&(1usize..=3), &mut rng);
            assert!((1..=3).contains(&i));
        }
    }

    #[test]
    fn map_and_vec_strategies_compose() {
        let mut rng = crate::test_runner::TestRng::deterministic(1);
        let strat = crate::collection::vec((0u32..10).prop_map(|v| v * 2), 2..5);
        for _ in 0..100 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x % 2 == 0 && x < 20));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = crate::test_runner::TestRng::deterministic(3);
        let mut b = crate::test_runner::TestRng::deterministic(3);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn generated_tests_run(x in 0u64..100, mut v in crate::collection::vec(0u32..5, 1..4)) {
            v.push(9);
            prop_assert!(x < 100);
            prop_assert_eq!(*v.last().expect("non-empty"), 9);
        }

    }

    #[test]
    fn bool_any_hits_both() {
        // Sampling across case indices must actually produce both
        // values — a degenerate always-true/always-false strategy
        // would starve every boolean branch of generated tests.
        let (mut seen_true, mut seen_false) = (false, false);
        for case in 0..64 {
            let mut rng = crate::test_runner::TestRng::deterministic(case);
            match crate::bool::ANY.sample(&mut rng) {
                true => seen_true = true,
                false => seen_false = true,
            }
        }
        assert!(
            seen_true && seen_false,
            "bool::ANY never yielded both values"
        );
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
