//! Minimal offline stand-in for the `rand` crate.
//!
//! Implements the subset of the `rand 0.8` public API used by this
//! workspace: [`Rng::gen_range`] over primitive ranges,
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic per seed, statistically solid for
//! test/benchmark purposes, **not** cryptographically secure (the real
//! `StdRng` is ChaCha12; swap this crate out when a registry is
//! available).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types uniformly sampleable from a half-open or inclusive range.
///
/// The blanket [`SampleRange`] impls below mirror the real crate's
/// structure so type inference at `gen_range` call sites behaves
/// identically.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Samples from `[start, end)` (`inclusive = false`) or
    /// `[start, end]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        start: Self,
        end: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// A range that knows how to sample one value of `T` from an RNG.
pub trait SampleRange<T> {
    /// Draws a single uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_uniform(start, end, true, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                start: Self,
                end: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (end as i128 - start as i128) as u128
                    + u128::from(inclusive);
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                start: Self,
                end: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = start as f64 + unit * (end as f64 - start as f64);
                let v = v as $t;
                if !inclusive && v >= end {
                    // Rounding can land exactly on `end` for narrow ranges.
                    <$t>::from_bits(end.to_bits() - 1)
                } else {
                    v
                }
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (SplitMix64-seeded).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut sm: u64) -> Self {
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_state(seed ^ 0xD6E8_FEB8_6659_FD93)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f32 = r.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&v));
            let i: usize = r.gen_range(3..10);
            assert!((3..10).contains(&i));
            let j: isize = r.gen_range(-2..=2);
            assert!((-2..=2).contains(&j));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!(
                (800..1200).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        assert_ne!(v, orig, "shuffle of 50 elements should move something");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle preserves the multiset");
    }
}
