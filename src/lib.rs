//! # emlrt — runtime resource management for embedded machine learning
//!
//! A full reproduction of *Lei Xun, Long Tran-Thanh, Bashir M. Al-Hashimi,
//! Geoff V. Merrett, "Optimising Resource Management for Embedded Machine
//! Learning", DATE 2020* (arXiv:2105.03608), as a Rust workspace:
//!
//! | Crate | Role |
//! |-------|------|
//! | [`platform`] | Heterogeneous SoC models (Odroid XU3, Jetson Nano, flagship), calibrated against the paper's Table I |
//! | [`nn`] | From-scratch NN library: group convolutions, incremental training, exact cost model |
//! | [`dnn`] | Dynamic DNNs: width levels, profiles, switching-cost models |
//! | [`rtm`] | The runtime resource manager: operating-point spaces, governors, multi-app allocation, knobs/monitors |
//! | [`sim`] | Multi-application simulator with reactive thermal management |
//!
//! ## The paper in three lines
//!
//! ```
//! use emlrt::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let soc = emlrt::platform::presets::odroid_xu3();
//! let profile = DnnProfile::reference("camera-dnn");
//! let space = OpSpace::new(&soc, &profile, OpSpaceConfig::default())?;
//! let req = Requirements::new()
//!     .with_max_latency(TimeSpan::from_millis(400.0))
//!     .with_max_energy(Energy::from_millijoules(100.0));
//! let best = ExhaustiveGovernor.decide(&space, &req, Objective::default())?;
//! assert!(best.is_some());
//! # Ok(())
//! # }
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Heterogeneous SoC performance/power/thermal models (re-export of
/// [`eml_platform`]).
pub use eml_platform as platform;

/// Minimal neural-network library with group convolutions (re-export of
/// [`eml_nn`]).
pub use eml_nn as nn;

/// Dynamic DNNs: runtime width scaling (re-export of [`eml_dnn`]).
pub use eml_dnn as dnn;

/// The runtime resource manager (re-export of [`eml_core`]).
pub use eml_core as rtm;

/// Multi-application simulator (re-export of [`eml_sim`]).
pub use eml_sim as sim;

/// The most common imports in one place.
pub mod prelude {
    pub use eml_core::governor::{ExhaustiveGovernor, Governor, GreedyGovernor, ParetoGovernor};
    pub use eml_core::objective::Objective;
    pub use eml_core::opspace::{EvaluatedPoint, OpSpace, OpSpaceConfig, OperatingPoint};
    pub use eml_core::requirements::Requirements;
    pub use eml_core::rtm::{AppSpec, DnnAppSpec, RigidAppSpec, Rtm, RtmConfig};
    pub use eml_dnn::profile::{DnnProfile, LevelSpec};
    pub use eml_dnn::{DynamicDnn, FourLevel, WidthLevel};
    pub use eml_platform::soc::{ClusterId, CoreKind, Placement, Soc};
    pub use eml_platform::units::{Celsius, Energy, Freq, Power, TimeSpan, Voltage};
    pub use eml_platform::workload::Workload;
    pub use eml_sim::{SimConfig, Simulator, Trace};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reexports_work() {
        use crate::prelude::*;
        let soc = crate::platform::presets::odroid_xu3();
        assert_eq!(soc.name(), "odroid-xu3");
        let p = DnnProfile::reference("x");
        assert_eq!(p.level_count(), 4);
        let _ = Requirements::new().with_max_latency(TimeSpan::from_millis(1.0));
    }
}
